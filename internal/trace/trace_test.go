package trace

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/simclock"
)

func TestBurstAllArriveTogether(t *testing.T) {
	w := Burst("b", 50, simclock.FromSeconds(2), FixedLengths{512, 1024}, FixedRate(20), 1)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.Len() != 50 {
		t.Fatalf("len = %d", w.Len())
	}
	for _, it := range w.Items {
		if it.Arrival != simclock.FromSeconds(2) {
			t.Fatalf("arrival = %v", it.Arrival)
		}
		if it.PromptLen != 512 || it.OutputLen != 1024 || it.Rate != 20 {
			t.Fatalf("item = %+v", it)
		}
	}
}

func TestBurstDeterministic(t *testing.T) {
	a := Burst("a", 30, 0, ShareGPTLengths(), UniformRate{10, 30}, 42)
	b := Burst("a", 30, 0, ShareGPTLengths(), UniformRate{10, 30}, 42)
	for i := range a.Items {
		if a.Items[i] != b.Items[i] {
			t.Fatal("same seed should reproduce identical workloads")
		}
	}
	c := Burst("a", 30, 0, ShareGPTLengths(), UniformRate{10, 30}, 43)
	same := true
	for i := range a.Items {
		if a.Items[i] != c.Items[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestPoissonRate(t *testing.T) {
	lambda := 5.0
	dur := simclock.FromSeconds(200)
	w := Poisson("p", lambda, dur, FixedLengths{64, 64}, FixedRate(10), 7)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	got := float64(w.Len()) / dur.Seconds()
	if got < 4 || got > 6 {
		t.Errorf("empirical rate = %.2f, want ~5", got)
	}
}

func TestPoissonArrivalsSorted(t *testing.T) {
	w := Poisson("p", 10, simclock.FromSeconds(30), ShareGPTLengths(), FixedRate(10), 3)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPoissonRejectsBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero lambda should panic")
		}
	}()
	Poisson("p", 0, simclock.FromSeconds(1), FixedLengths{1, 1}, FixedRate(1), 1)
}

func TestBurstGPTBurstierThanPoisson(t *testing.T) {
	dur := simclock.FromSeconds(600)
	bg := BurstGPT("bg", BurstGPTConfig{
		Duration: dur, BaseRate: 2, GammaShape: 0.3,
		Lengths: FixedLengths{64, 64}, Rates: FixedRate(10), Seed: 11,
	})
	po := Poisson("po", 2, dur, FixedLengths{64, 64}, FixedRate(10), 11)
	if err := bg.Validate(); err != nil {
		t.Fatal(err)
	}
	// Empirical rate should still be ~BaseRate.
	rate := float64(bg.Len()) / dur.Seconds()
	if rate < 1.2 || rate > 2.8 {
		t.Errorf("BurstGPT empirical rate = %.2f, want ~2", rate)
	}
	// Burstiness: coefficient of variation of inter-arrivals should exceed
	// Poisson's (CV=1).
	cvBG := interArrivalCV(bg)
	cvPO := interArrivalCV(po)
	if cvBG <= cvPO {
		t.Errorf("BurstGPT CV %.2f should exceed Poisson CV %.2f", cvBG, cvPO)
	}
}

func TestBurstGPTSpikes(t *testing.T) {
	dur := simclock.FromSeconds(100)
	w := BurstGPT("bg", BurstGPTConfig{
		Duration: dur, BaseRate: 1,
		SpikeEvery: simclock.FromSeconds(50), SpikeSize: 40,
		Lengths: FixedLengths{64, 64}, Rates: FixedRate(10), Seed: 5,
	})
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	// Two spikes of 40 on top of ~100 background arrivals.
	spike := 0
	for _, it := range w.Items {
		if it.Arrival == simclock.FromSeconds(50) || it.Arrival == simclock.FromSeconds(100) {
			spike++
		}
	}
	if spike < 80 {
		t.Errorf("spike arrivals = %d, want >= 80", spike)
	}
}

func interArrivalCV(w Workload) float64 {
	var gaps []float64
	for i := 1; i < len(w.Items); i++ {
		gaps = append(gaps, (w.Items[i].Arrival - w.Items[i-1].Arrival).Seconds())
	}
	var mean float64
	for _, g := range gaps {
		mean += g
	}
	mean /= float64(len(gaps))
	var variance float64
	for _, g := range gaps {
		variance += (g - mean) * (g - mean)
	}
	variance /= float64(len(gaps))
	if mean == 0 {
		return 0
	}
	return math.Sqrt(variance) / mean
}

func TestIndustrialShape(t *testing.T) {
	w := Industrial("ind", simclock.FromSeconds(600), 4, FixedRate(15), 9)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	s := w.Summarize()
	if s.Count < 500 {
		t.Fatalf("industrial trace too small: %d", s.Count)
	}
	// Bimodal prompts: p99 should dwarf p50.
	if s.P99Prompt < 3*s.P50Prompt {
		t.Errorf("expected long-tail prompts: p50=%d p99=%d", s.P50Prompt, s.P99Prompt)
	}
}

func TestMergeSortsByArrival(t *testing.T) {
	a := Burst("a", 3, simclock.FromSeconds(5), FixedLengths{1, 1}, FixedRate(1), 1)
	b := Burst("b", 3, simclock.FromSeconds(2), FixedLengths{2, 2}, FixedRate(1), 1)
	m := Merge("m", a, b)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Items[0].PromptLen != 2 {
		t.Error("earlier burst should sort first")
	}
	if m.Len() != 6 {
		t.Errorf("merged len = %d", m.Len())
	}
}

func TestValidateCatchesDisorder(t *testing.T) {
	w := Workload{Name: "bad", Items: []Item{
		{Arrival: simclock.FromSeconds(2), PromptLen: 1, OutputLen: 1},
		{Arrival: simclock.FromSeconds(1), PromptLen: 1, OutputLen: 1},
	}}
	if w.Validate() == nil {
		t.Error("out-of-order arrivals should fail validation")
	}
	w2 := Workload{Name: "bad2", Items: []Item{{PromptLen: 0, OutputLen: 1}}}
	if w2.Validate() == nil {
		t.Error("zero prompt should fail validation")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	var w Workload
	if s := w.Summarize(); s.Count != 0 {
		t.Error("empty summary")
	}
	if w.Duration() != 0 || w.TotalOutputTokens() != 0 || w.TotalPromptTokens() != 0 {
		t.Error("empty workload totals should be zero")
	}
}

func TestSummarizeTotals(t *testing.T) {
	w := Burst("b", 10, 0, FixedLengths{100, 200}, FixedRate(20), 1)
	if w.TotalPromptTokens() != 1000 || w.TotalOutputTokens() != 2000 {
		t.Error("totals wrong")
	}
	s := w.Summarize()
	if s.MeanPrompt != 100 || s.MeanOutput != 200 || s.MeanRate != 20 {
		t.Errorf("summary = %+v", s)
	}
}

func TestNormalLengthsClamped(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NormalLengths{PromptMean: 512, PromptStd: 256, OutputMean: 1024, OutputStd: 512, Min: 16, Max: 2048}
	for i := 0; i < 1000; i++ {
		p, o := d.Sample(rng)
		if p < 16 || p > 2048 || o < 16 || o > 2048 {
			t.Fatalf("unclamped sample (%d,%d)", p, o)
		}
	}
}

func TestMixtureRateProportions(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := MixtureRate{Rates: []float64{15, 20}, Weights: []float64{0.4, 0.6}}
	count15 := 0
	n := 10000
	for i := 0; i < n; i++ {
		if m.SampleRate(rng) == 15 {
			count15++
		}
	}
	frac := float64(count15) / float64(n)
	if frac < 0.37 || frac > 0.43 {
		t.Errorf("15 tok/s fraction = %.3f, want ~0.4", frac)
	}
}

func TestMixtureRateEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var empty MixtureRate
	if empty.SampleRate(rng) != 0 {
		t.Error("empty mixture should return 0")
	}
	defer func() {
		if recover() == nil {
			t.Error("mismatched mixture should panic")
		}
	}()
	MixtureRate{Rates: []float64{1}, Weights: []float64{1, 2}}.SampleRate(rng)
}

func TestUniformRateBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	u := UniformRate{Lo: 10, Hi: 30}
	for i := 0; i < 1000; i++ {
		r := u.SampleRate(rng)
		if r < 10 || r > 30 {
			t.Fatalf("rate %v out of bounds", r)
		}
	}
}

func TestGammaMean(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var sum float64
	n := 20000
	for i := 0; i < n; i++ {
		sum += sampleGamma(rng, 0.4, 2.5) // mean = 1.0
	}
	mean := sum / float64(n)
	if mean < 0.9 || mean > 1.1 {
		t.Errorf("gamma mean = %.3f, want ~1.0", mean)
	}
}

func TestGammaRejectsBadParams(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	defer func() {
		if recover() == nil {
			t.Error("bad gamma params should panic")
		}
	}()
	sampleGamma(rng, 0, 1)
}

func TestConsumptionTableShape(t *testing.T) {
	rows := ConsumptionTable()
	if len(rows) != len(Languages)*len(AgeGroups) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Reading <= 0 || r.Reading > 8 {
			t.Errorf("%s/%s reading rate %.2f outside Figure 1's 0-8 band", r.Language, r.Age, r.Reading)
		}
		if r.Listening <= 0 || r.Listening > 8 {
			t.Errorf("%s/%s listening rate %.2f outside band", r.Language, r.Age, r.Listening)
		}
		if r.Listening >= r.Reading && r.Age != AgeUnder12 {
			t.Errorf("%s/%s: listening %.2f should be slower than reading %.2f", r.Language, r.Age, r.Listening, r.Reading)
		}
	}
}

func TestReadingPeaksInWorkingAge(t *testing.T) {
	for _, lang := range Languages {
		peak := ReadingRate(lang, Age26to45)
		if ReadingRate(lang, AgeUnder12) >= peak || ReadingRate(lang, Age60plus) >= peak {
			t.Errorf("%s: working-age adults should read fastest", lang)
		}
	}
}

// Property: Burst output always validates and has exactly n items for any
// (n, seed).
func TestPropertyBurstValid(t *testing.T) {
	f := func(nRaw uint8, seed int64) bool {
		n := int(nRaw%100) + 1
		w := Burst("p", n, 0, ShareGPTLengths(), UniformRate{5, 40}, seed)
		return w.Len() == n && w.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: merged workloads validate and preserve item count.
func TestPropertyMergeValid(t *testing.T) {
	f := func(seed int64) bool {
		a := Poisson("a", 3, simclock.FromSeconds(20), ShareGPTLengths(), FixedRate(10), seed)
		b := Burst("b", 10, simclock.FromSeconds(10), FixedLengths{64, 64}, FixedRate(10), seed)
		m := Merge("m", a, b)
		return m.Validate() == nil && m.Len() == a.Len()+b.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
