package trace

import (
	"fmt"
	"math"
	"math/rand"
)

// LengthDist samples (prompt, output) token lengths for one request.
type LengthDist interface {
	Sample(rng *rand.Rand) (prompt, output int)
}

// RateDist samples a client consumption rate for one request.
type RateDist interface {
	SampleRate(rng *rand.Rand) float64
}

// NormalLengths draws prompt and output lengths from independent normal
// distributions clamped to [Min, Max], matching the controlled experiments
// of §7.3 ("input/output lengths follow normal distributions").
type NormalLengths struct {
	PromptMean, PromptStd float64
	OutputMean, OutputStd float64
	Min, Max              int
}

// Sample implements LengthDist.
func (d NormalLengths) Sample(rng *rand.Rand) (int, int) {
	p := clampInt(int(rng.NormFloat64()*d.PromptStd+d.PromptMean), d.Min, d.Max)
	o := clampInt(int(rng.NormFloat64()*d.OutputStd+d.OutputMean), d.Min, d.Max)
	return p, o
}

// LogNormalLengths draws lengths from log-normal distributions, the shape
// that fits ShareGPT-style conversational traces (long tails of both
// prompts and generations).
type LogNormalLengths struct {
	PromptMu, PromptSigma float64
	OutputMu, OutputSigma float64
	Min, Max              int
}

// Sample implements LengthDist.
func (d LogNormalLengths) Sample(rng *rand.Rand) (int, int) {
	p := clampInt(int(math.Exp(rng.NormFloat64()*d.PromptSigma+d.PromptMu)), d.Min, d.Max)
	o := clampInt(int(math.Exp(rng.NormFloat64()*d.OutputSigma+d.OutputMu)), d.Min, d.Max)
	return p, o
}

// FixedLengths always returns the same lengths; used by micro-benchmarks
// and toy examples.
type FixedLengths struct {
	Prompt, Output int
}

// Sample implements LengthDist.
func (d FixedLengths) Sample(*rand.Rand) (int, int) { return d.Prompt, d.Output }

// ShareGPTLengths returns a log-normal fit of the ShareGPT dataset's
// prompt/response lengths (median prompt ≈ 250 tokens, median response
// ≈ 320 tokens, heavy right tails), used for the "real-world patterns"
// workloads of §7.3.
func ShareGPTLengths() LengthDist {
	return LogNormalLengths{
		PromptMu: 5.5, PromptSigma: 0.9,
		OutputMu: 5.8, OutputSigma: 0.8,
		Min: 16, Max: 8192,
	}
}

// IndustrialLengths returns the bimodal mixture shaped like the paper's
// production trace (Figure 11): a mass of short interactive exchanges plus
// a long-prompt mode from retrieval-augmented calls.
type IndustrialLengths struct{}

// Sample implements LengthDist.
func (IndustrialLengths) Sample(rng *rand.Rand) (int, int) {
	var p int
	if rng.Float64() < 0.7 {
		p = clampInt(int(math.Exp(rng.NormFloat64()*0.7+5.2)), 16, 8192) // short mode ~180
	} else {
		p = clampInt(int(math.Exp(rng.NormFloat64()*0.5+7.0)), 16, 8192) // long mode ~1100
	}
	o := clampInt(int(math.Exp(rng.NormFloat64()*0.7+5.6)), 16, 4096) // ~270
	return p, o
}

// FixedRate always returns rate r.
type FixedRate float64

// SampleRate implements RateDist.
func (r FixedRate) SampleRate(*rand.Rand) float64 { return float64(r) }

// MixtureRate draws a rate from a weighted discrete mixture; Figure 19's
// workload is 40% at 15 tok/s and 60% at 20 tok/s.
type MixtureRate struct {
	Rates   []float64
	Weights []float64
}

// SampleRate implements RateDist.
func (m MixtureRate) SampleRate(rng *rand.Rand) float64 {
	if len(m.Rates) == 0 {
		return 0
	}
	if len(m.Rates) != len(m.Weights) {
		panic(fmt.Sprintf("trace: mixture has %d rates but %d weights", len(m.Rates), len(m.Weights)))
	}
	var total float64
	for _, w := range m.Weights {
		total += w
	}
	x := rng.Float64() * total
	for i, w := range m.Weights {
		x -= w
		if x < 0 {
			return m.Rates[i]
		}
	}
	return m.Rates[len(m.Rates)-1]
}

// UniformRate draws a rate uniformly from [Lo, Hi].
type UniformRate struct {
	Lo, Hi float64
}

// SampleRate implements RateDist.
func (u UniformRate) SampleRate(rng *rand.Rand) float64 {
	return u.Lo + rng.Float64()*(u.Hi-u.Lo)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// sampleGamma draws from a Gamma(shape, scale) distribution using
// Marsaglia & Tsang's method; the BurstGPT trace models inter-arrival
// times as Gamma-distributed with shape < 1 (burstier than Poisson).
func sampleGamma(rng *rand.Rand, shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic(fmt.Sprintf("trace: gamma parameters must be positive (shape=%v scale=%v)", shape, scale))
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return sampleGamma(rng, shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}
