package trace

// Human token-consumption rates by age group and language, the Figure 1
// data of the paper: reading speeds derived from the NIH age-related
// reading-speed study, converted to tokens/second with OpenAI's published
// characters-per-token ratios per language; listening speeds from typical
// speech rates. The absolute values land in the 2-8 tokens/s band the
// figure shows, with working-age adults fastest and both children and
// seniors slower.

// AgeGroup labels the Figure 1 x-axis buckets.
type AgeGroup string

// Age group buckets.
const (
	AgeUnder12 AgeGroup = "<12"
	Age12to13  AgeGroup = "12-13"
	Age14to15  AgeGroup = "14-15"
	Age16to17  AgeGroup = "16-17"
	Age18to25  AgeGroup = "18-25"
	Age26to45  AgeGroup = "26-45"
	Age46to60  AgeGroup = "46-60"
	Age60plus  AgeGroup = "60+"
)

// AgeGroups lists the buckets in display order.
var AgeGroups = []AgeGroup{
	AgeUnder12, Age12to13, Age14to15, Age16to17,
	Age18to25, Age26to45, Age46to60, Age60plus,
}

// Language labels the Figure 1 series.
type Language string

// Languages evaluated in Figure 1.
const (
	English  Language = "English"
	Chinese  Language = "Chinese"
	Japanese Language = "Japanese"
)

// Languages lists the series in display order.
var Languages = []Language{English, Chinese, Japanese}

// readingAgeProfile is the age modulation of reading speed (peaks in
// working age, declines past 60), normalized to the 26-45 bucket.
var readingAgeProfile = map[AgeGroup]float64{
	AgeUnder12: 0.45, Age12to13: 0.62, Age14to15: 0.75, Age16to17: 0.85,
	Age18to25: 0.97, Age26to45: 1.00, Age46to60: 0.90, Age60plus: 0.70,
}

// Peak adult reading rates in tokens/second per language. English prose is
// ~250 words/min ≈ 5.6 tok/s; CJK text carries more information per token
// under BPE tokenizers, so the token rate is higher.
var readingPeak = map[Language]float64{
	English: 5.6, Chinese: 7.2, Japanese: 6.6,
}

// Listening (speech) rates are flatter across ages and slower than reading.
var listeningAgeProfile = map[AgeGroup]float64{
	AgeUnder12: 0.80, Age12to13: 0.90, Age14to15: 0.95, Age16to17: 1.00,
	Age18to25: 1.00, Age26to45: 1.00, Age46to60: 0.95, Age60plus: 0.85,
}

var listeningPeak = map[Language]float64{
	English: 3.8, Chinese: 4.6, Japanese: 4.3,
}

// ReadingRate reports the token consumption rate for reading, Figure 1 left.
func ReadingRate(lang Language, age AgeGroup) float64 {
	return readingPeak[lang] * readingAgeProfile[age]
}

// ListeningRate reports the token consumption rate for listening, Figure 1
// right.
func ListeningRate(lang Language, age AgeGroup) float64 {
	return listeningPeak[lang] * listeningAgeProfile[age]
}

// ConsumptionTable materializes the full Figure 1 data table.
type ConsumptionRow struct {
	Age                AgeGroup
	Language           Language
	Reading, Listening float64
}

// ConsumptionTable returns one row per (age, language) pair in display
// order.
func ConsumptionTable() []ConsumptionRow {
	var rows []ConsumptionRow
	for _, lang := range Languages {
		for _, age := range AgeGroups {
			rows = append(rows, ConsumptionRow{
				Age:       age,
				Language:  lang,
				Reading:   ReadingRate(lang, age),
				Listening: ListeningRate(lang, age),
			})
		}
	}
	return rows
}
