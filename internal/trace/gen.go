package trace

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/simclock"
)

// Burst generates a flash crowd: n requests all arriving at time at
// (Table 1 setups (a)/(b), "bursty arrivals simulating flash crowds").
func Burst(name string, n int, at simclock.Time, lengths LengthDist, rates RateDist, seed int64) Workload {
	rng := rand.New(rand.NewSource(seed))
	w := Workload{Name: name}
	for i := 0; i < n; i++ {
		p, o := lengths.Sample(rng)
		w.Items = append(w.Items, Item{
			Arrival:   at,
			PromptLen: p,
			OutputLen: o,
			Rate:      rates.SampleRate(rng),
		})
	}
	return w
}

// Poisson generates arrivals at rate lambda requests/second over the given
// duration (Table 1 setups (c)/(d), "Poisson-distributed arrivals modeling
// typical traffic").
func Poisson(name string, lambda float64, duration simclock.Time, lengths LengthDist, rates RateDist, seed int64) Workload {
	if lambda <= 0 {
		panic(fmt.Sprintf("trace: non-positive Poisson rate %v", lambda))
	}
	rng := rand.New(rand.NewSource(seed))
	w := Workload{Name: name}
	t := 0.0
	end := duration.Seconds()
	for {
		t += rng.ExpFloat64() / lambda
		if t > end {
			break
		}
		p, o := lengths.Sample(rng)
		w.Items = append(w.Items, Item{
			Arrival:   simclock.FromSeconds(t),
			PromptLen: p,
			OutputLen: o,
			Rate:      rates.SampleRate(rng),
		})
	}
	return w
}

// BurstGPTConfig parameterizes the BurstGPT-like generator.
type BurstGPTConfig struct {
	// Duration of the trace.
	Duration simclock.Time
	// BaseRate is the long-run average arrival rate in requests/second.
	BaseRate float64
	// GammaShape < 1 makes inter-arrival times burstier than Poisson
	// (the BurstGPT dataset fits shape ≈ 0.3-0.5).
	GammaShape float64
	// SpikeEvery and SpikeSize inject periodic flash crowds on top of the
	// background process (zero disables spikes).
	SpikeEvery simclock.Time
	SpikeSize  int
	Lengths    LengthDist
	Rates      RateDist
	Seed       int64
}

// BurstGPT generates a BurstGPT-like trace: Gamma-distributed inter-arrival
// times (burstier than Poisson) with optional periodic request spikes.
func BurstGPT(name string, cfg BurstGPTConfig) Workload {
	if cfg.BaseRate <= 0 {
		panic(fmt.Sprintf("trace: non-positive base rate %v", cfg.BaseRate))
	}
	shape := cfg.GammaShape
	if shape <= 0 {
		shape = 0.4
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := Workload{Name: name}
	// Mean inter-arrival = 1/BaseRate = shape*scale.
	scale := 1 / (cfg.BaseRate * shape)
	t := 0.0
	end := cfg.Duration.Seconds()
	for {
		t += sampleGamma(rng, shape, scale)
		if t > end {
			break
		}
		p, o := cfg.Lengths.Sample(rng)
		w.Items = append(w.Items, Item{
			Arrival:   simclock.FromSeconds(t),
			PromptLen: p,
			OutputLen: o,
			Rate:      cfg.Rates.SampleRate(rng),
		})
	}
	if cfg.SpikeEvery > 0 && cfg.SpikeSize > 0 {
		var spikes []Workload
		for at := cfg.SpikeEvery; at <= cfg.Duration; at += cfg.SpikeEvery {
			spikes = append(spikes, Burst(name, cfg.SpikeSize, at, cfg.Lengths, cfg.Rates, cfg.Seed^int64(at)))
		}
		w = Merge(name, append(spikes, w)...)
	}
	return w
}

// Industrial generates a workload shaped like the paper's production trace
// (Figure 11): a bursty arrival process with a sinusoidally modulated rate
// (traffic peaks) and the bimodal length mixture of IndustrialLengths.
func Industrial(name string, duration simclock.Time, peakRate float64, rates RateDist, seed int64) Workload {
	if peakRate <= 0 {
		panic(fmt.Sprintf("trace: non-positive peak rate %v", peakRate))
	}
	rng := rand.New(rand.NewSource(seed))
	w := Workload{Name: name}
	lengths := IndustrialLengths{}
	end := duration.Seconds()
	period := end / 3 // three traffic waves across the trace
	if period <= 0 {
		period = 1
	}
	t := 0.0
	for {
		// Thinning: generate at peak rate, accept with probability equal
		// to the instantaneous modulation (0.35..1.0 sinusoid).
		t += rng.ExpFloat64() / peakRate
		if t > end {
			break
		}
		mod := 0.675 + 0.325*sin01(t/period)
		if rng.Float64() > mod {
			continue
		}
		p, o := lengths.Sample(rng)
		w.Items = append(w.Items, Item{
			Arrival:   simclock.FromSeconds(t),
			PromptLen: p,
			OutputLen: o,
			Rate:      rates.SampleRate(rng),
		})
	}
	return w
}

// sin01 maps a phase in periods to a [−1, 1] sinusoid.
func sin01(phase float64) float64 {
	return math.Sin(phase * 2 * math.Pi)
}
