package trace

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/simclock"
)

// SessionConfig parameterizes the multi-turn session workload generator:
// chat-style conversations of several turns, where each turn's prompt is
// the previous turn's full context (prompt + response) plus a short new
// user message, separated by client think time. The growing shared prefix
// is what KV-affinity routing exploits: a replica that served turn t-1
// still holds most of turn t's prompt in its cache.
type SessionConfig struct {
	// Sessions is the number of conversations.
	Sessions int

	// Duration is the window over which sessions start.
	Duration simclock.Time

	// SpikeEvery and SpikeFraction inject flash crowds of session starts:
	// every SpikeEvery, a cohort of sessions opens simultaneously (the
	// request-burst regime), with SpikeFraction of all sessions assigned to
	// cohorts (default 0.5 when SpikeEvery > 0). Zero SpikeEvery disables
	// spikes and spreads all starts uniformly.
	SpikeEvery    simclock.Time
	SpikeFraction float64

	// RampUp draws non-spike session starts with density growing linearly
	// over the window (few conversations early, many late) instead of
	// uniformly — the warm-up-stalled regime predictive autoscaling
	// targets: a forecastable trend rather than a level shift.
	RampUp bool

	// MinTurns and MaxTurns bound the uniform turns-per-session draw
	// (defaults 3 and 8).
	MinTurns, MaxTurns int

	// FirstPrompt sizes the opening prompt; Followup sizes the new user
	// tokens appended each later turn; Output sizes per-turn responses.
	// All are normal draws clamped to [MinLen, MaxLen]. Defaults: 512±128,
	// 64±16, 256±64 within [16, 8192].
	FirstPromptMean, FirstPromptStd float64
	FollowupMean, FollowupStd       float64
	OutputMean, OutputStd           float64
	MinLen, MaxLen                  int

	// ThinkMeanSeconds is the mean of the exponential think-time gap
	// between consuming one response and sending the next turn (default 10).
	ThinkMeanSeconds float64

	// Rates draws one consumption rate per session (a user reads at one
	// speed across their conversation). Nil defaults to FixedRate(20).
	Rates RateDist

	Seed int64
}

func (c SessionConfig) withDefaults() SessionConfig {
	if c.MinTurns == 0 {
		c.MinTurns = 3
	}
	if c.MaxTurns == 0 {
		c.MaxTurns = 8
	}
	if c.FirstPromptMean == 0 {
		c.FirstPromptMean, c.FirstPromptStd = 512, 128
	}
	if c.FollowupMean == 0 {
		c.FollowupMean, c.FollowupStd = 64, 16
	}
	if c.OutputMean == 0 {
		c.OutputMean, c.OutputStd = 256, 64
	}
	if c.MinLen == 0 {
		c.MinLen = 16
	}
	if c.MaxLen == 0 {
		c.MaxLen = 8192
	}
	if c.ThinkMeanSeconds == 0 {
		c.ThinkMeanSeconds = 10
	}
	if c.SpikeEvery > 0 && c.SpikeFraction == 0 {
		c.SpikeFraction = 0.5
	}
	if c.Rates == nil {
		c.Rates = FixedRate(20)
	}
	return c
}

// Sessions generates a multi-turn conversation workload. Items carry
// Session (1-based) and Turn (1-based) tags; within a session, turn t's
// prompt equals turn t-1's prompt + output + a followup message, so
// consecutive turns share a prefix of the full previous context. Turn
// arrivals are spaced by the time the client spends consuming the previous
// response plus an exponential think-time gap. Deterministic per seed.
func Sessions(name string, cfg SessionConfig) Workload {
	cfg = cfg.withDefaults()
	if cfg.Sessions <= 0 {
		panic(fmt.Sprintf("trace: non-positive session count %d", cfg.Sessions))
	}
	if cfg.MinTurns < 1 || cfg.MaxTurns < cfg.MinTurns {
		panic(fmt.Sprintf("trace: bad turn bounds [%d, %d]", cfg.MinTurns, cfg.MaxTurns))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Session start times: a spike cohort share plus a uniform background.
	starts := make([]float64, cfg.Sessions)
	nSpike := 0
	var spikeTimes []float64
	if cfg.SpikeEvery > 0 {
		for at := cfg.SpikeEvery; at <= cfg.Duration; at += cfg.SpikeEvery {
			spikeTimes = append(spikeTimes, at.Seconds())
		}
		if len(spikeTimes) > 0 {
			nSpike = int(cfg.SpikeFraction * float64(cfg.Sessions))
		}
	}
	for i := range starts {
		if i < nSpike {
			starts[i] = spikeTimes[i%len(spikeTimes)]
		} else {
			u := rng.Float64()
			if cfg.RampUp {
				// Inverse-CDF of a linearly growing density: start times
				// concentrate toward the end of the window.
				u = math.Sqrt(u)
			}
			starts[i] = u * cfg.Duration.Seconds()
		}
	}

	sample := func(mean, std float64) int {
		return clampInt(int(rng.NormFloat64()*std+mean), cfg.MinLen, cfg.MaxLen)
	}

	var per []Workload
	for s := 0; s < cfg.Sessions; s++ {
		turns := cfg.MinTurns + rng.Intn(cfg.MaxTurns-cfg.MinTurns+1)
		rate := cfg.Rates.SampleRate(rng)
		t := starts[s]
		prompt := sample(cfg.FirstPromptMean, cfg.FirstPromptStd)
		w := Workload{Name: fmt.Sprintf("%s/s%d", name, s+1)}
		for turn := 1; turn <= turns; turn++ {
			output := sample(cfg.OutputMean, cfg.OutputStd)
			w.Items = append(w.Items, Item{
				Arrival:   simclock.FromSeconds(t),
				PromptLen: prompt,
				OutputLen: output,
				Rate:      rate,
				Session:   s + 1,
				Turn:      turn,
			})
			// Next turn: the client consumes the response, thinks, then
			// sends a short followup on top of the full previous context.
			// If growth hits the MaxLen clamp, the prompt no longer
			// extends the previous context (truncation); the engine's
			// prefix cache detects that and treats it as a miss.
			consume := 0.0
			if rate > 0 {
				consume = float64(output) / rate
			}
			t += consume + rng.ExpFloat64()*cfg.ThinkMeanSeconds
			prompt = clampInt(prompt+output+sample(cfg.FollowupMean, cfg.FollowupStd),
				cfg.MinLen, cfg.MaxLen)
		}
		per = append(per, w)
	}
	return Merge(name, per...)
}
