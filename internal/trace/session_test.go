package trace

import (
	"reflect"
	"testing"

	"repro/internal/simclock"
)

func TestSessionsShape(t *testing.T) {
	cfg := SessionConfig{
		Sessions: 20,
		Duration: simclock.FromSeconds(120),
		Rates:    FixedRate(20),
		Seed:     5,
	}
	w := Sessions("s", cfg)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	// Reassemble per-session turn sequences from the merged trace.
	type turn struct {
		item Item
	}
	bySession := map[int][]turn{}
	for _, it := range w.Items {
		if it.Session < 1 || it.Session > cfg.Sessions {
			t.Fatalf("item has session %d outside [1,%d]", it.Session, cfg.Sessions)
		}
		bySession[it.Session] = append(bySession[it.Session], turn{it})
	}
	if len(bySession) != cfg.Sessions {
		t.Fatalf("trace has %d sessions, want %d", len(bySession), cfg.Sessions)
	}
	norm := cfg.withDefaults()
	for s, turns := range bySession {
		if n := len(turns); n < norm.MinTurns || n > norm.MaxTurns {
			t.Errorf("session %d has %d turns, want within [%d,%d]", s, n, norm.MinTurns, norm.MaxTurns)
		}
		for i, tn := range turns {
			if tn.item.Turn != i+1 {
				t.Fatalf("session %d turn %d labeled %d (merge broke turn order)", s, i+1, tn.item.Turn)
			}
			if i == 0 {
				continue
			}
			prev := turns[i-1].item
			if tn.item.Arrival <= prev.Arrival {
				t.Errorf("session %d turn %d arrives at %v, not after previous %v",
					s, i+1, tn.item.Arrival, prev.Arrival)
			}
			// The prompt grows by the previous full exchange plus a
			// followup of at least MinLen tokens (unless clamped at MaxLen).
			wantMin := prev.PromptLen + prev.OutputLen + norm.MinLen
			if wantMin > norm.MaxLen {
				wantMin = norm.MaxLen
			}
			if tn.item.PromptLen < wantMin {
				t.Errorf("session %d turn %d prompt %d < previous context + followup %d",
					s, i+1, tn.item.PromptLen, wantMin)
			}
			if tn.item.Rate != prev.Rate {
				t.Errorf("session %d changes consumption rate mid-conversation", s)
			}
		}
	}
}

func TestSessionsDeterministic(t *testing.T) {
	cfg := SessionConfig{Sessions: 10, Duration: simclock.FromSeconds(60), Seed: 11}
	a := Sessions("a", cfg)
	b := Sessions("a", cfg)
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different session traces")
	}
	cfg.Seed = 12
	c := Sessions("a", cfg)
	if reflect.DeepEqual(a.Items, c.Items) {
		t.Error("different seeds produced identical session traces")
	}
}

func TestSessionsSpikesClusterStarts(t *testing.T) {
	w := Sessions("spiky", SessionConfig{
		Sessions:   40,
		Duration:   simclock.FromSeconds(100),
		SpikeEvery: simclock.FromSeconds(50),
		Seed:       3,
	})
	// Half the sessions (SpikeFraction default 0.5) start exactly at the
	// spike instants 50s and 100s.
	starts := map[simclock.Time]int{}
	for _, it := range w.Items {
		if it.Turn == 1 {
			starts[it.Arrival]++
		}
	}
	spiked := starts[simclock.FromSeconds(50)] + starts[simclock.FromSeconds(100)]
	if spiked != 20 {
		t.Errorf("%d sessions start at spike instants, want 20", spiked)
	}
}
