// Package trace generates the request workloads used in the paper's
// evaluation: flash-crowd bursts and Poisson arrivals for the controlled
// experiments (Table 1), a BurstGPT-like bursty arrival process, and an
// industrial-trace-like mixture matching the published distribution shapes
// (Figure 11). All generators are deterministic for a given seed.
package trace

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/simclock"
)

// Item is one request specification in a workload.
type Item struct {
	Arrival   simclock.Time
	PromptLen int
	OutputLen int
	// Rate is the client's required consumption rate in tokens/second.
	Rate float64
	// Session and Turn mark multi-turn conversation membership (Session 0 =
	// stateless single-shot request). Turns of one session arrive in order
	// and share a growing prompt prefix: turn t's prompt extends turn t-1's
	// full context, which KV-affinity routers exploit.
	Session int
	Turn    int
}

// Workload is an ordered set of request specifications.
type Workload struct {
	Name  string
	Items []Item
}

// Validate checks arrival ordering and positive lengths.
func (w Workload) Validate() error {
	var prev simclock.Time
	for i, it := range w.Items {
		if it.Arrival < prev {
			return fmt.Errorf("trace %s: item %d arrives at %v before previous %v", w.Name, i, it.Arrival, prev)
		}
		if it.PromptLen < 1 || it.OutputLen < 1 {
			return fmt.Errorf("trace %s: item %d has degenerate lengths (%d,%d)", w.Name, i, it.PromptLen, it.OutputLen)
		}
		prev = it.Arrival
	}
	return nil
}

// Len reports the number of requests.
func (w Workload) Len() int { return len(w.Items) }

// TotalOutputTokens reports the sum of output lengths.
func (w Workload) TotalOutputTokens() int64 {
	var n int64
	for _, it := range w.Items {
		n += int64(it.OutputLen)
	}
	return n
}

// TotalPromptTokens reports the sum of prompt lengths.
func (w Workload) TotalPromptTokens() int64 {
	var n int64
	for _, it := range w.Items {
		n += int64(it.PromptLen)
	}
	return n
}

// Duration reports the arrival span of the workload.
func (w Workload) Duration() simclock.Time {
	if len(w.Items) == 0 {
		return 0
	}
	return w.Items[len(w.Items)-1].Arrival
}

// Merge combines workloads into one, re-sorted by arrival time. Merging is
// stable for equal arrivals.
func Merge(name string, ws ...Workload) Workload {
	var out Workload
	out.Name = name
	for _, w := range ws {
		out.Items = append(out.Items, w.Items...)
	}
	sort.SliceStable(out.Items, func(i, j int) bool {
		return out.Items[i].Arrival < out.Items[j].Arrival
	})
	return out
}

// Stats summarizes a workload for reporting and distribution checks.
type Stats struct {
	Count        int
	MeanPrompt   float64
	MeanOutput   float64
	MeanRate     float64
	P50Prompt    int
	P99Prompt    int
	P50Output    int
	P99Output    int
	ArrivalsPerS float64
}

// Summarize computes workload statistics.
func (w Workload) Summarize() Stats {
	s := Stats{Count: len(w.Items)}
	if s.Count == 0 {
		return s
	}
	prompts := make([]int, 0, s.Count)
	outputs := make([]int, 0, s.Count)
	var sp, so, sr float64
	for _, it := range w.Items {
		prompts = append(prompts, it.PromptLen)
		outputs = append(outputs, it.OutputLen)
		sp += float64(it.PromptLen)
		so += float64(it.OutputLen)
		sr += it.Rate
	}
	sort.Ints(prompts)
	sort.Ints(outputs)
	s.MeanPrompt = sp / float64(s.Count)
	s.MeanOutput = so / float64(s.Count)
	s.MeanRate = sr / float64(s.Count)
	s.P50Prompt = prompts[s.Count/2]
	s.P99Prompt = prompts[percentileIndex(s.Count, 0.99)]
	s.P50Output = outputs[s.Count/2]
	s.P99Output = outputs[percentileIndex(s.Count, 0.99)]
	if d := w.Duration().Seconds(); d > 0 {
		s.ArrivalsPerS = float64(s.Count) / d
	}
	return s
}

func percentileIndex(n int, p float64) int {
	i := int(math.Ceil(p*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}
