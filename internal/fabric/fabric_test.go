package fabric

import (
	"testing"
	"time"

	"repro/internal/gpu"
	"repro/internal/simclock"
)

func mustTopo(t *testing.T, replicas int, spec Spec) *Topology {
	t.Helper()
	topo, err := NewTopology(replicas, spec)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestSpecValidate(t *testing.T) {
	for _, bad := range []Spec{
		{Kind: "ring", LinkGBps: 1},
		{Kind: FullMesh, LinkGBps: -1},
		{Kind: SharedNIC, LinkGBps: 1, SwitchGBps: -2},
	} {
		if bad.Validate() == nil {
			t.Errorf("spec %+v should fail", bad)
		}
	}
	if _, err := NewTopology(0, Spec{}); err == nil {
		t.Error("zero replicas should fail")
	}
}

// TestSingleLinkPathMatchesEnqueue pins the refactor's equivalence anchor:
// booking a single-link path through the scheduler produces byte-identical
// times and counters to calling gpu.Link.Enqueue directly.
func TestSingleLinkPathMatchesEnqueue(t *testing.T) {
	raw := gpu.NewLink("raw", 1e9)
	topo := mustTopo(t, 2, Spec{Kind: FullMesh, LinkGBps: 1})
	s := NewScheduler(topo)

	sizes := []int64{1 << 20, 3 << 20, 123, 7 << 20}
	var now simclock.Time
	for i, n := range sizes {
		rs, rd := raw.Enqueue(now, n)
		fs, fd := s.BookBetween(ClassMigrate, 0, 1, now, n)
		if rs != fs || rd != fd {
			t.Fatalf("transfer %d: fabric (%v,%v) != raw (%v,%v)", i, fs, fd, rs, rd)
		}
		now = now.Add(time.Duration(i) * time.Millisecond)
	}
	rb, rbusy, rn := raw.Stats()
	link := topo.Path(0, 1)[0]
	fb, fbusy, fn := link.Stats()
	if rb != fb || rbusy != fbusy || rn != fn {
		t.Errorf("counters diverge: raw (%d,%v,%d) fabric (%d,%v,%d)", rb, rbusy, rn, fb, fbusy, fn)
	}
}

// TestSharedNICSerializes: two simultaneous migrations out of one replica
// must serialize on its egress NIC — done times strictly ordered, the
// second starting when the first drains — while a full mesh runs them in
// parallel.
func TestSharedNICSerializes(t *testing.T) {
	shared := NewScheduler(mustTopo(t, 3, Spec{Kind: SharedNIC, LinkGBps: 1}))
	s1, d1 := shared.BookBetween(ClassMigrate, 0, 1, 0, 1<<30)
	s2, d2 := shared.BookBetween(ClassMigrate, 0, 2, 0, 1<<30)
	if s1 != 0 {
		t.Errorf("first transfer start = %v, want 0", s1)
	}
	if s2 != d1 {
		t.Errorf("second transfer start = %v, want first done %v", s2, d1)
	}
	if d2 <= d1 {
		t.Errorf("done times not strictly ordered: %v <= %v", d2, d1)
	}

	mesh := NewScheduler(mustTopo(t, 3, Spec{Kind: FullMesh, LinkGBps: 1}))
	_, m1 := mesh.BookBetween(ClassMigrate, 0, 1, 0, 1<<30)
	ms2, m2 := mesh.BookBetween(ClassMigrate, 0, 2, 0, 1<<30)
	if ms2 != 0 || m1 != m2 {
		t.Errorf("full mesh should run disjoint pairs in parallel: start %v, done %v vs %v", ms2, m1, m2)
	}
}

// TestSharedNICIngressContention: transfers from different donors into one
// receiver serialize on its ingress NIC.
func TestSharedNICIngressContention(t *testing.T) {
	s := NewScheduler(mustTopo(t, 3, Spec{Kind: SharedNIC, LinkGBps: 1}))
	_, d1 := s.BookBetween(ClassPrewarm, 0, 2, 0, 1<<30)
	s2, _ := s.BookBetween(ClassDrain, 1, 2, 0, 1<<30)
	if s2 != d1 {
		t.Errorf("ingress-sharing transfer starts at %v, want %v", s2, d1)
	}
}

// TestBlockingSwitchSerializesAll: with a finite switch stage, even
// transfers between disjoint replica pairs serialize through it.
func TestBlockingSwitchSerializesAll(t *testing.T) {
	s := NewScheduler(mustTopo(t, 4, Spec{Kind: SharedNIC, LinkGBps: 10, SwitchGBps: 1}))
	// The switch is the bottleneck (1 GB/s vs 10 GB/s NICs).
	_, d1 := s.BookBetween(ClassMigrate, 0, 1, 0, 1<<30)
	s2, _ := s.BookBetween(ClassMigrate, 2, 3, 0, 1<<30)
	if s2 != d1 {
		t.Errorf("disjoint pairs should serialize on the switch: start %v, want %v", s2, d1)
	}
	if want := gpu.NewLink("ref", 1e9).TransferTime(1 << 30); d1 != simclock.Time(want) {
		t.Errorf("bottleneck wire time %v, want switch-rate %v", d1, want)
	}
}

// TestETAMatchesBooking: the unbooked estimate equals what a booking would
// experience, and reflects path backlog.
func TestETAMatchesBooking(t *testing.T) {
	s := NewScheduler(mustTopo(t, 3, Spec{Kind: SharedNIC, LinkGBps: 1}))
	if eta := s.ETABetween(0, 1, 0, 1<<30); eta != gpu.NewLink("ref", 1e9).TransferTime(1<<30) {
		t.Errorf("idle ETA = %v", eta)
	}
	_, d1 := s.BookBetween(ClassMigrate, 0, 1, 0, 1<<30)
	eta := s.ETABetween(0, 2, 0, 1<<20)
	want := simclock.Time(0).Add(gpu.NewLink("ref", 1e9).TransferTime(1 << 20))
	if eta != d1.Sub(0)+want.Sub(0) {
		t.Errorf("backlogged ETA = %v, want queueing %v + wire %v", eta, d1, want)
	}
	// Estimating must not book.
	s2, _ := s.BookBetween(ClassMigrate, 0, 2, 0, 1<<20)
	if s2 != d1 {
		t.Errorf("estimate perturbed the links: start %v, want %v", s2, d1)
	}
}

// TestClassAccounting: bookings tally bytes, transfers, and bottleneck
// busy time under their class only.
func TestClassAccounting(t *testing.T) {
	s := NewScheduler(mustTopo(t, 2, Spec{Kind: FullMesh, LinkGBps: 1}))
	ep := s.Endpoint(0)
	ep.AttachHost(2e9)
	ep.EnqueueD2H(ClassSync, 0, 1000)
	ep.EnqueueD2H(ClassEvict, 0, 500)
	ep.EnqueueH2D(ClassReload, 0, 250)
	s.BookBetween(ClassMigrate, 0, 1, 0, 2000)

	got := map[Class]ClassStats{}
	for _, cs := range s.ClassStats() {
		got[cs.Class] = cs
	}
	if cs := got[ClassSync]; cs.Transfers != 1 || cs.Bytes != 1000 {
		t.Errorf("sync stats %+v", cs)
	}
	if cs := got[ClassEvict]; cs.Bytes != 500 {
		t.Errorf("evict stats %+v", cs)
	}
	if cs := got[ClassReload]; cs.Bytes != 250 {
		t.Errorf("reload stats %+v", cs)
	}
	if cs := got[ClassMigrate]; cs.Bytes != 2000 || cs.Busy <= 0 {
		t.Errorf("migrate stats %+v", cs)
	}
	if cs := got[ClassLoad]; cs.Transfers != 0 {
		t.Errorf("untouched class has traffic: %+v", cs)
	}
	for _, c := range Classes() {
		if c.String() == "" {
			t.Errorf("class %d has no name", int(c))
		}
	}
}

// TestLinkSnapshots: every topology link is visible, host pairs included
// once attached.
func TestLinkSnapshots(t *testing.T) {
	s := NewScheduler(mustTopo(t, 2, Spec{Kind: SharedNIC, LinkGBps: 1, SwitchGBps: 5}))
	s.Endpoint(0).AttachHost(1e9)
	// 2 host + 2x2 NIC + switch.
	snaps := s.LinkSnapshots(0)
	if len(snaps) != 7 {
		t.Fatalf("snapshot count = %d, want 7", len(snaps))
	}
	names := map[string]bool{}
	for _, sn := range snaps {
		names[sn.Name] = true
	}
	for _, want := range []string{"host-d2h-0", "host-h2d-0", "nic-out-0", "nic-in-1", "switch"} {
		if !names[want] {
			t.Errorf("link %q missing from snapshots (have %v)", want, names)
		}
	}
}

func TestAttachHostTwicePanics(t *testing.T) {
	topo := mustTopo(t, 1, Spec{})
	topo.AttachHost(0, 1e9)
	defer func() {
		if recover() == nil {
			t.Error("double attach should panic")
		}
	}()
	topo.AttachHost(0, 1e9)
}

// TestBookingAllocationBound pins the transfer hot path: steady-state
// bookings on a built topology — interconnect paths and host-link
// enqueues alike — must not allocate. The per-replica class-stat rows are
// laid out at construction, so a booking only advances link cursors and
// bumps counters.
func TestBookingAllocationBound(t *testing.T) {
	topo := mustTopo(t, 4, Spec{Kind: SharedNIC, LinkGBps: 2, SwitchGBps: 4})
	s := NewScheduler(topo)
	ep := s.Endpoint(1)
	ep.AttachHost(2e9)
	var (
		now simclock.Time
		i   int
	)
	if avg := testing.AllocsPerRun(1000, func() {
		s.BookBetween(ClassMigrate, i%4, (i+1)%4, now, 1<<20)
		ep.EnqueueD2H(ClassSync, now, 1<<16)
		ep.EnqueueH2D(ClassReload, now, 1<<16)
		now += simclock.FromSeconds(0.001)
		i++
	}); avg > 0 {
		t.Errorf("steady-state booking allocates %.1f objects per round, want 0", avg)
	}
}

// BenchmarkBookBetween measures one cross-replica interconnect booking on
// a contended shared-NIC topology.
func BenchmarkBookBetween(b *testing.B) {
	topo, err := NewTopology(8, Spec{Kind: SharedNIC, LinkGBps: 2, SwitchGBps: 4})
	if err != nil {
		b.Fatal(err)
	}
	s := NewScheduler(topo)
	var now simclock.Time
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.BookBetween(ClassMigrate, i%8, (i+3)%8, now, 1<<20)
		now += simclock.FromSeconds(0.0005)
	}
}
