// Package fabric is the simulator's unified transfer fabric: a Topology of
// named gpu.Link queues — per-replica host PCIe pairs plus a replica
// interconnect — and a TransferScheduler that books every KV byte movement
// (write-through sync, eviction drains, resume loads, host-tier prefix
// reloads, routing migrations, pre-warm, drain hand-off) over those links
// with FIFO contention and per-class byte/busy accounting. It replaces the
// private link mesh the cluster used to own and the raw link pair inside
// the KV cache manager, so every transfer in the simulation contends on
// one explicitly modelled set of wires.
//
// Two interconnect layouts are supported. FullMesh gives every directed
// replica pair a dedicated link, so transfers between different pairs never
// contend — the infinite-parallelism interconnect earlier revisions
// hard-coded, kept as the degenerate config the equivalence tests pin.
// SharedNIC gives each replica one egress and one ingress NIC link,
// optionally behind a single shared switch link: every transfer out of a
// replica crosses its egress NIC and every transfer into one crosses its
// ingress NIC, so concurrent migrations, pre-warms, and drain hand-offs
// that share an endpoint serialize — the bandwidth-aware contention the
// cost-modelled migration policy consults before committing a session's KV
// to the wire.
//
// A transfer over a multi-link path is circuit-style: it claims every link
// on the path from the instant the last of them drains and holds all of
// them for the wire time of the path's bottleneck link. For single-link
// paths this reduces exactly to gpu.Link.Enqueue, which is what keeps the
// refactor byte-identical to the old per-link booking.
package fabric

import (
	"fmt"
	"time"

	"repro/internal/gpu"
	"repro/internal/obs"
	"repro/internal/simclock"
)

// Kind selects the interconnect layout of a Topology.
type Kind string

// Interconnect layouts.
const (
	// FullMesh: a dedicated link per directed replica pair. No contention
	// between different pairs.
	FullMesh Kind = "full-mesh"
	// SharedNIC: one egress and one ingress NIC link per replica, behind an
	// optional shared switch. Transfers sharing an endpoint serialize.
	SharedNIC Kind = "shared-nic"
)

// Kinds lists the supported interconnect layouts.
func Kinds() []Kind { return []Kind{FullMesh, SharedNIC} }

// Spec describes an interconnect layout. Host links are not part of the
// spec: replicas attach them with their own device's PCIe bandwidth.
type Spec struct {
	// Kind selects the layout (default FullMesh).
	Kind Kind

	// LinkGBps is the bandwidth of one interconnect link in GB/s: per
	// directed pair under FullMesh, per NIC direction under SharedNIC
	// (default 25, RDMA-class).
	LinkGBps float64

	// SwitchGBps bounds the aggregate switch bandwidth under SharedNIC: all
	// transfers additionally serialize through one switch link of this
	// bandwidth. Zero models a non-blocking switch (no shared stage).
	// Ignored under FullMesh.
	SwitchGBps float64
}

func (s Spec) withDefaults() Spec {
	if s.Kind == "" {
		s.Kind = FullMesh
	}
	if s.LinkGBps == 0 {
		s.LinkGBps = 25
	}
	return s
}

// Validate reports layout errors.
func (s Spec) Validate() error {
	switch s.Kind {
	case FullMesh, SharedNIC:
	default:
		return fmt.Errorf("fabric: unknown topology kind %q (have %v)", s.Kind, Kinds())
	}
	if s.LinkGBps <= 0 {
		return fmt.Errorf("fabric: non-positive link bandwidth %v GB/s", s.LinkGBps)
	}
	if s.SwitchGBps < 0 {
		return fmt.Errorf("fabric: negative switch bandwidth %v GB/s", s.SwitchGBps)
	}
	return nil
}

// Topology is the named link set of one deployment: per-replica host PCIe
// pairs (attached by the engines, which know their device's bandwidth) and
// the interconnect links the Spec lays out.
type Topology struct {
	spec Spec
	n    int

	hostD2H, hostH2D []*gpu.Link

	// pair[i][j] is the FullMesh link from replica i to j (nil diagonal).
	pair [][]*gpu.Link
	// egress[i] / ingress[i] are replica i's SharedNIC uplink directions;
	// sw is the optional shared switch stage.
	egress, ingress []*gpu.Link
	sw              *gpu.Link

	// paths[i][j] is the precomputed link sequence from replica i to j
	// (nil diagonal), built once so the booking hot path never allocates.
	// The slices are immutable after construction and therefore safe to
	// read from concurrent shard goroutines.
	paths [][][]*gpu.Link
}

// NewTopology builds the interconnect for the given replica count.
func NewTopology(replicas int, spec Spec) (*Topology, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if replicas < 1 {
		return nil, fmt.Errorf("fabric: replica count %d must be >= 1", replicas)
	}
	t := &Topology{
		spec:    spec,
		n:       replicas,
		hostD2H: make([]*gpu.Link, replicas),
		hostH2D: make([]*gpu.Link, replicas),
	}
	bps := spec.LinkGBps * 1e9
	switch spec.Kind {
	case FullMesh:
		t.pair = make([][]*gpu.Link, replicas)
		for i := range t.pair {
			t.pair[i] = make([]*gpu.Link, replicas)
			for j := range t.pair[i] {
				if i != j {
					t.pair[i][j] = gpu.NewLink(fmt.Sprintf("ic-%d-%d", i, j), bps)
				}
			}
		}
	case SharedNIC:
		t.egress = make([]*gpu.Link, replicas)
		t.ingress = make([]*gpu.Link, replicas)
		for i := 0; i < replicas; i++ {
			t.egress[i] = gpu.NewLink(fmt.Sprintf("nic-out-%d", i), bps)
			t.ingress[i] = gpu.NewLink(fmt.Sprintf("nic-in-%d", i), bps)
		}
		if spec.SwitchGBps > 0 {
			t.sw = gpu.NewLink("switch", spec.SwitchGBps*1e9)
		}
	}
	t.paths = make([][][]*gpu.Link, replicas)
	for i := range t.paths {
		t.paths[i] = make([][]*gpu.Link, replicas)
		for j := range t.paths[i] {
			if i == j {
				continue
			}
			if spec.Kind == FullMesh {
				t.paths[i][j] = []*gpu.Link{t.pair[i][j]}
				continue
			}
			path := []*gpu.Link{t.egress[i]}
			if t.sw != nil {
				path = append(path, t.sw)
			}
			t.paths[i][j] = append(path, t.ingress[j])
		}
	}
	return t, nil
}

// Spec reports the topology's resolved layout.
func (t *Topology) Spec() Spec { return t.spec }

// Replicas reports the replica count the topology was built for.
func (t *Topology) Replicas() int { return t.n }

// AttachHost creates replica i's host link pair (device-to-host and
// host-to-device, PCIe full duplex) at the given per-direction bandwidth.
// Each engine attaches its own, since the bandwidth is a device property.
// Attaching twice is a wiring bug and panics.
func (t *Topology) AttachHost(replica int, bytesPerSec float64) {
	t.checkReplica(replica)
	if t.hostD2H[replica] != nil {
		panic(fmt.Sprintf("fabric: replica %d host links already attached", replica))
	}
	t.hostD2H[replica] = gpu.NewLink(fmt.Sprintf("host-d2h-%d", replica), bytesPerSec)
	t.hostH2D[replica] = gpu.NewLink(fmt.Sprintf("host-h2d-%d", replica), bytesPerSec)
}

// HostD2H returns replica i's device-to-host link (nil until attached).
func (t *Topology) HostD2H(replica int) *gpu.Link {
	t.checkReplica(replica)
	return t.hostD2H[replica]
}

// HostH2D returns replica i's host-to-device link (nil until attached).
func (t *Topology) HostH2D(replica int) *gpu.Link {
	t.checkReplica(replica)
	return t.hostH2D[replica]
}

// Path resolves the interconnect link sequence a transfer from one replica
// to another traverses: the dedicated pair link under FullMesh; egress NIC,
// optional switch, ingress NIC under SharedNIC. The returned slice is
// shared and immutable — callers must not modify it.
func (t *Topology) Path(from, to int) []*gpu.Link {
	t.checkReplica(from)
	t.checkReplica(to)
	if from == to {
		panic(fmt.Sprintf("fabric: self-transfer on replica %d", from))
	}
	return t.paths[from][to]
}

// Links lists every link of the topology (attached host pairs first, then
// the interconnect), for snapshotting.
func (t *Topology) Links() []*gpu.Link {
	var out []*gpu.Link
	for i := 0; i < t.n; i++ {
		if t.hostD2H[i] != nil {
			out = append(out, t.hostD2H[i], t.hostH2D[i])
		}
	}
	for _, row := range t.pair {
		for _, l := range row {
			if l != nil {
				out = append(out, l)
			}
		}
	}
	for i := range t.egress {
		out = append(out, t.egress[i], t.ingress[i])
	}
	if t.sw != nil {
		out = append(out, t.sw)
	}
	return out
}

func (t *Topology) checkReplica(i int) {
	if i < 0 || i >= t.n {
		panic(fmt.Sprintf("fabric: replica %d outside topology of %d", i, t.n))
	}
}

// Class labels a transfer's purpose for per-class accounting.
type Class int

// Transfer classes.
const (
	// ClassSync: background write-through mirroring (d2h).
	ClassSync Class = iota
	// ClassEvict: preemption evictions and pin eviction drains (d2h).
	ClassEvict
	// ClassLoad: preempted-request resume loads (h2d).
	ClassLoad
	// ClassReload: host-tier prefix cache reloads (h2d).
	ClassReload
	// ClassMigrate: routing-driven cross-replica pin migrations.
	ClassMigrate
	// ClassPrewarm: pre-warm migrations seeding a warming replica.
	ClassPrewarm
	// ClassDrain: drain hand-off migrations off a stopping replica.
	ClassDrain
	// ClassIndex: prefix-index publications — the control-plane events
	// replicas stream to the gateway's global KV index. Accounting-only
	// traffic (see Account): the propagation delay is modelled by the
	// index, not by link occupancy.
	ClassIndex
	// ClassReplicate: chaos pin-redundancy traffic — periodic host-mirror
	// copies of pinned session prefixes onto backup replicas, and the
	// post-crash re-replication restoring lost pins from surviving mirrors.
	ClassReplicate

	numClasses
)

var classNames = [numClasses]string{
	"sync", "evict", "load", "reload", "migrate", "prewarm", "drain", "index",
	"replicate",
}

func (c Class) String() string {
	if c >= 0 && c < numClasses {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// Classes lists every transfer class in accounting order.
func Classes() []Class {
	out := make([]Class, numClasses)
	for i := range out {
		out[i] = Class(i)
	}
	return out
}

// ClassStats totals one transfer class's traffic across the whole fabric.
type ClassStats struct {
	Class     Class
	Transfers int64
	Bytes     int64
	// Busy is the summed bottleneck wire time of the class's transfers
	// (queueing excluded).
	Busy time.Duration
}

// TransferScheduler books transfers over a Topology's links with FIFO
// contention, tallying per-class traffic. All byte movement in the
// simulation funnels through one scheduler, so contention between transfer
// classes (a pre-warm delaying a drain hand-off on a shared NIC, a reload
// queued behind a resume load on the host link) is modelled rather than
// assumed away.
type TransferScheduler struct {
	topo *Topology
	// classes is sharded by booking replica (row replica+1; row 0 takes
	// direct Book calls with no replica). Host-link bookings are issued
	// only by their own replica's engine, so under sharded cluster
	// execution each row has a single writer and bookings from parallel
	// shards never contend; ClassStats sums the rows on read.
	classes [][numClasses]ClassStats

	// obs/prof are the optional flight-recorder sinks; both default nil
	// (free). Booking emits one KindTransfer event per transfer and
	// charges the settle scan to PhaseFabricSettle. Under sharded cluster
	// execution repObs/repProf route each booking to the sink owned by
	// the booking replica's shard (mirroring the classes-row single-writer
	// discipline); obs/prof then serve only replica-less direct bookings,
	// issued by the coordinator.
	obs     *obs.Recorder
	prof    *obs.Profiler
	repObs  []*obs.Recorder
	repProf []*obs.Profiler
}

// NewScheduler wraps a topology in a transfer scheduler.
func NewScheduler(topo *Topology) *TransferScheduler {
	return &TransferScheduler{
		topo:    topo,
		classes: make([][numClasses]ClassStats, topo.n+1),
	}
}

// Topology exposes the scheduler's link set.
func (s *TransferScheduler) Topology() *Topology { return s.topo }

// SetObs installs the flight-recorder sinks. Pure observation: booking
// behavior is identical with or without them.
func (s *TransferScheduler) SetObs(rec *obs.Recorder, prof *obs.Profiler) {
	s.obs = rec
	s.prof = prof
}

// SetReplicaObs installs per-replica flight-recorder sinks for sharded
// runs: bookings attributed to the replica record there instead of the
// shared sinks, so each recorder keeps a single writing goroutine.
func (s *TransferScheduler) SetReplicaObs(replica int, rec *obs.Recorder, prof *obs.Profiler) {
	s.topo.checkReplica(replica)
	if s.repObs == nil {
		s.repObs = make([]*obs.Recorder, s.topo.n)
		s.repProf = make([]*obs.Profiler, s.topo.n)
	}
	s.repObs[replica] = rec
	s.repProf[replica] = prof
}

// Endpoint returns replica i's view of the scheduler (the handle the KV
// cache manager books host transfers through).
func (s *TransferScheduler) Endpoint(replica int) *Endpoint {
	s.topo.checkReplica(replica)
	return &Endpoint{s: s, replica: replica}
}

// pathPlan resolves when a transfer submitted now could start on the path
// (after the busiest link's backlog) and which link bottlenecks its wire
// time. Book and ETABetween share it, so the cost model's estimates can
// never diverge from what a booking actually charges.
func pathPlan(path []*gpu.Link, now simclock.Time) (start simclock.Time, bottleneck *gpu.Link) {
	if len(path) == 0 {
		panic("fabric: empty transfer path")
	}
	start = now
	bottleneck = path[0]
	for _, l := range path {
		if bu := l.BusyUntil(); bu > start {
			start = bu
		}
		if l.BytesPerSec() < bottleneck.BytesPerSec() {
			bottleneck = l
		}
	}
	return start, bottleneck
}

// Book books a transfer over an explicit link path: it starts when the last
// link of the path drains and holds every link for the bottleneck's wire
// time. For a single-link path this is exactly gpu.Link.Enqueue.
func (s *TransferScheduler) Book(class Class, path []*gpu.Link, now simclock.Time, bytes int64) (start, done simclock.Time) {
	return s.book(class, path, now, bytes, -1)
}

// book is Book with the booking side's replica attached for event
// attribution (-1 when the caller books an explicit path directly).
func (s *TransferScheduler) book(class Class, path []*gpu.Link, now simclock.Time, bytes int64, replica int) (start, done simclock.Time) {
	rec, prof := s.obs, s.prof
	if replica >= 0 && replica < len(s.repObs) {
		rec, prof = s.repObs[replica], s.repProf[replica]
	}
	t0 := prof.Begin()
	start, bottleneck := pathPlan(path, now)
	wire := bottleneck.TransferTime(bytes)
	done = start.Add(wire)
	for _, l := range path {
		l.Reserve(start, done, bytes)
	}
	cs := &s.classes[replica+1][class]
	cs.Transfers++
	cs.Bytes += bytes
	cs.Busy += wire
	prof.End(obs.PhaseFabricSettle, t0)
	rec.Emit(now, obs.KindTransfer, replica, -1, -1,
		int64(start), int64(done), bytes, 0, classNames[class])
	return start, done
}

// BookBetween books an interconnect transfer between two replicas over the
// topology's path for the pair.
func (s *TransferScheduler) BookBetween(class Class, from, to int, now simclock.Time, bytes int64) (start, done simclock.Time) {
	return s.book(class, s.topo.Path(from, to), now, bytes, from)
}

// Account tallies control-plane traffic into a class's ledger without
// reserving link time: the bytes are real (they cross the fabric and show
// up in per-class totals and conservation laws) but far too small to
// contend with KV payloads, and their latency is modelled by the consumer
// — the prefix index applies publications after its propagation delay.
// Like link bookings, each replica's accounting row has a single writer,
// so shard goroutines account concurrently without contention.
func (s *TransferScheduler) Account(class Class, replica int, bytes int64) {
	s.topo.checkReplica(replica)
	cs := &s.classes[replica+1][class]
	cs.Transfers++
	cs.Bytes += bytes
}

// AccountN tallies n equal-sized control-plane transfers in one ledger
// write — the batched form of Account for producers that count their own
// traffic (the prefix index's publication counters) and settle the ledger
// at collection time instead of paying a ledger write per event.
func (s *TransferScheduler) AccountN(class Class, replica int, bytes, n int64) {
	s.topo.checkReplica(replica)
	cs := &s.classes[replica+1][class]
	cs.Transfers += n
	cs.Bytes += n * bytes
}

// ETABetween predicts, without booking, how long an interconnect transfer
// between two replicas submitted now would take to complete: path queueing
// (the backlog of the busiest link on the path) plus bottleneck wire time.
// The migration cost model weighs this against prefix recompute.
func (s *TransferScheduler) ETABetween(from, to int, now simclock.Time, bytes int64) time.Duration {
	start, bottleneck := pathPlan(s.topo.Path(from, to), now)
	return start.Sub(now) + bottleneck.TransferTime(bytes)
}

// ClassStats reports the per-class transfer totals in class order, summed
// across the per-replica accounting rows.
func (s *TransferScheduler) ClassStats() []ClassStats {
	out := make([]ClassStats, numClasses)
	for i := range out {
		out[i].Class = Class(i)
	}
	for r := range s.classes {
		for c := range out {
			cs := &s.classes[r][c]
			out[c].Transfers += cs.Transfers
			out[c].Bytes += cs.Bytes
			out[c].Busy += cs.Busy
		}
	}
	return out
}

// LinkSnapshots captures every topology link's counters at now.
func (s *TransferScheduler) LinkSnapshots(now simclock.Time) []gpu.LinkSnapshot {
	links := s.topo.Links()
	out := make([]gpu.LinkSnapshot, 0, len(links))
	for _, l := range links {
		out = append(out, l.Snapshot(now))
	}
	return out
}

// Endpoint is one replica's handle on the fabric: the host-link operations
// the KV cache manager needs, with every booking routed through the
// scheduler's class accounting.
type Endpoint struct {
	s       *TransferScheduler
	replica int
}

// Replica reports which replica the endpoint belongs to.
func (e *Endpoint) Replica() int { return e.replica }

// Scheduler exposes the owning transfer scheduler.
func (e *Endpoint) Scheduler() *TransferScheduler { return e.s }

// AttachHost creates the replica's host link pair at the given
// per-direction bandwidth (see Topology.AttachHost).
func (e *Endpoint) AttachHost(bytesPerSec float64) {
	e.s.topo.AttachHost(e.replica, bytesPerSec)
}

// HostAttached reports whether the replica's host links exist yet.
func (e *Endpoint) HostAttached() bool {
	return e.s.topo.hostD2H[e.replica] != nil
}

// D2H returns the replica's device-to-host link for read-only estimation
// (queue delay, wire time, backlog). Book transfers through EnqueueD2H so
// they are class-accounted.
func (e *Endpoint) D2H() *gpu.Link { return e.s.topo.HostD2H(e.replica) }

// H2D returns the replica's host-to-device link for read-only estimation.
func (e *Endpoint) H2D() *gpu.Link { return e.s.topo.HostH2D(e.replica) }

// EnqueueD2H books a device-to-host transfer submitted at now.
func (e *Endpoint) EnqueueD2H(class Class, now simclock.Time, bytes int64) (start, done simclock.Time) {
	return e.s.book(class, []*gpu.Link{e.D2H()}, now, bytes, e.replica)
}

// EnqueueH2D books a host-to-device transfer submitted at now.
func (e *Endpoint) EnqueueH2D(class Class, now simclock.Time, bytes int64) (start, done simclock.Time) {
	return e.s.book(class, []*gpu.Link{e.H2D()}, now, bytes, e.replica)
}

// NewSingleHost builds the degenerate fabric of a standalone single-device
// engine — no interconnect, just one replica's host link pair at the given
// per-direction bandwidths — and returns its endpoint.
func NewSingleHost(d2hBytesPerSec, h2dBytesPerSec float64) *Endpoint {
	topo, err := NewTopology(1, Spec{})
	if err != nil {
		panic(err) // the degenerate spec is statically valid
	}
	topo.hostD2H[0] = gpu.NewLink("host-d2h-0", d2hBytesPerSec)
	topo.hostH2D[0] = gpu.NewLink("host-h2d-0", h2dBytesPerSec)
	return NewScheduler(topo).Endpoint(0)
}
