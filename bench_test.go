// Package repro's root benchmarks regenerate every table and figure of the
// paper's evaluation (one benchmark per artifact; see DESIGN.md §4 for the
// index and EXPERIMENTS.md for paper-vs-measured results). Experiments are
// deterministic simulations, so a single iteration reproduces the artifact;
// sizes scale with TOKENFLOW_SCALE (default 1.0 = paper scale).
//
//	go test -bench=. -benchmem
//	go test -bench=Fig16 -v          # print the regenerated table
package repro

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/gpu"
	"repro/internal/model"
	"repro/internal/request"
	"repro/internal/sched"
	"repro/internal/simclock"
	"repro/tokenflow"
)

// runExperiment wraps one experiment as a benchmark: each b.N iteration
// regenerates the artifact; the table is logged under -v.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	var tbl *experiments.Table
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = e.Run()
		if err != nil {
			b.Fatal(err)
		}
	}
	if tbl != nil {
		b.Log("\n" + tbl.Format())
	}
}

func BenchmarkFig01ConsumptionRates(b *testing.B)       { runExperiment(b, "fig01") }
func BenchmarkFig02SGLangBurst(b *testing.B)            { runExperiment(b, "fig02") }
func BenchmarkFig06ToyExample(b *testing.B)             { runExperiment(b, "fig06") }
func BenchmarkFig08WriteStrategies(b *testing.B)        { runExperiment(b, "fig08") }
func BenchmarkFig09ChunkedWriting(b *testing.B)         { runExperiment(b, "fig09") }
func BenchmarkFig10LoadEvictOverlap(b *testing.B)       { runExperiment(b, "fig10") }
func BenchmarkFig11TraceDistribution(b *testing.B)      { runExperiment(b, "fig11") }
func BenchmarkFig12EndToEndH200(b *testing.B)           { runExperiment(b, "fig12") }
func BenchmarkFig13EndToEndA6000(b *testing.B)          { runExperiment(b, "fig13") }
func BenchmarkFig14QueueTimeline(b *testing.B)          { runExperiment(b, "fig14") }
func BenchmarkFig15RunningTimeline(b *testing.B)        { runExperiment(b, "fig15") }
func BenchmarkTab01Configurations(b *testing.B)         { runExperiment(b, "tab01") }
func BenchmarkFig16Burst(b *testing.B)                  { runExperiment(b, "fig16") }
func BenchmarkFig17Poisson(b *testing.B)                { runExperiment(b, "fig17") }
func BenchmarkFig18Timelines(b *testing.B)              { runExperiment(b, "fig18") }
func BenchmarkFig19MultiRate(b *testing.B)              { runExperiment(b, "fig19") }
func BenchmarkFig20SpeedSweep(b *testing.B)             { runExperiment(b, "fig20") }
func BenchmarkFig21Ascend(b *testing.B)                 { runExperiment(b, "fig21") }
func BenchmarkFig22RescheduleInterval(b *testing.B)     { runExperiment(b, "fig22") }
func BenchmarkFig23BufferConservativeness(b *testing.B) { runExperiment(b, "fig23") }
func BenchmarkTab02Ablation(b *testing.B)               { runExperiment(b, "tab02") }
func BenchmarkClusterScaling(b *testing.B)              { runExperiment(b, "cluster") }
func BenchmarkHeteroPools(b *testing.B)                 { runExperiment(b, "hetero") }
func BenchmarkAutoscale(b *testing.B)                   { runExperiment(b, "autoscale") }
func BenchmarkFabric(b *testing.B)                      { runExperiment(b, "fabric") }
func BenchmarkSLOPolicies(b *testing.B)                 { runExperiment(b, "slo") }
func BenchmarkScaleEnvelope(b *testing.B)               { runExperiment(b, "scale") }

// BenchmarkRandomSpecInvariants drives seeded random cluster scenarios
// (autoscale × topology × migration × gateway space) through the
// cross-subsystem invariant checker. One iteration runs a handful of
// scenarios, so the CI bench smoke step exercises random specs — and the
// conservation laws — on every push.
func BenchmarkRandomSpecInvariants(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for seed := int64(0); seed < 6; seed++ {
			sc := cluster.RandomScenario(rand.New(rand.NewSource(1000 + seed)))
			cl, err := cluster.New(sc.Config, sc.Build)
			if err != nil {
				b.Fatalf("seed %d: %v", seed, err)
			}
			res, err := cl.Run(sc.Workload)
			if err != nil {
				b.Fatalf("seed %d: %v", seed, err)
			}
			if res.TimedOut {
				b.Fatalf("seed %d: timed out", seed)
			}
			if err := cluster.CheckInvariants(res, sc.Workload.Len()); err != nil {
				b.Fatalf("seed %d: %v", seed, err)
			}
		}
	}
}

// BenchmarkAutoscaledSpikes measures one full autoscaled cluster run
// (1..4 replicas, queue-pressure policy, KV pre-warming) on the multi-turn
// spike workload — the autoscaler subsystem's wall-clock cost per
// simulated run.
func BenchmarkAutoscaledSpikes(b *testing.B) {
	s := experiments.Scale
	sessions := int(300 * s)
	if sessions < 1 {
		sessions = 1
	}
	w := tokenflow.SessionSpikesWorkload(sessions, 240*s, 60*s, 20, 7)
	for i := 0; i < b.N; i++ {
		res, err := tokenflow.RunCluster(tokenflow.ClusterConfig{
			Config:   tokenflow.Config{GPU: "RTX-4090", Model: "Llama3-8B"},
			Replicas: 4,
			Router:   tokenflow.RouterSessionAffinity,
			Autoscale: &tokenflow.AutoscaleSpec{
				MinReplicas: 1, MaxReplicas: 4,
				WarmupSeconds: 5, Prewarm: true,
			},
		}, w)
		if err != nil {
			b.Fatal(err)
		}
		if res.Cluster.Finished == 0 {
			b.Fatal("no requests finished")
		}
	}
}

// BenchmarkCluster4xLeastQueue measures one full 4-replica cluster
// simulation under least-queue routing on the multi-turn spike workload —
// the cluster subsystem's wall-clock cost per simulated run. Sessions,
// duration, and spike period scale together so the load regime (arrival
// rate) stays constant across TOKENFLOW_SCALE values.
func BenchmarkCluster4xLeastQueue(b *testing.B) {
	s := experiments.Scale
	sessions := int(300 * s)
	if sessions < 1 {
		sessions = 1
	}
	w := tokenflow.SessionSpikesWorkload(sessions, 240*s, 60*s, 20, 7)
	for i := 0; i < b.N; i++ {
		res, err := tokenflow.RunCluster(tokenflow.ClusterConfig{
			Config:   tokenflow.Config{GPU: "RTX-4090", Model: "Llama3-8B"},
			Replicas: 4,
			Router:   tokenflow.RouterLeastQueue,
		}, w)
		if err != nil {
			b.Fatal(err)
		}
		if res.Cluster.Finished == 0 {
			b.Fatal("no requests finished")
		}
	}
}

// benchHetero measures one full heterogeneous cluster run (1×H200 +
// 2×RTX-4090) under session-affinity routing on the multi-turn spike
// workload, with cross-replica KV migration on or off — the
// unified-residency subsystem's wall-clock cost and the perf datapoint
// pair for the migration-vs-recompute tradeoff.
func benchHetero(b *testing.B, migrate bool) {
	b.Helper()
	s := experiments.Scale
	sessions := int(300 * s)
	if sessions < 1 {
		sessions = 1
	}
	w := tokenflow.SessionSpikesWorkload(sessions, 240*s, 60*s, 20, 7)
	for i := 0; i < b.N; i++ {
		res, err := tokenflow.RunCluster(tokenflow.ClusterConfig{
			Config: tokenflow.Config{GPU: "RTX-4090", Model: "Llama3-8B"},
			ReplicaSpecs: []tokenflow.ReplicaSpec{
				{GPU: "H200", MemFraction: 0.3, Count: 1},
				{GPU: "RTX-4090", MemFraction: 0.9, Count: 2},
			},
			Router:  tokenflow.RouterSessionAffinity,
			Migrate: migrate,
		}, w)
		if err != nil {
			b.Fatal(err)
		}
		if res.Cluster.Finished == 0 {
			b.Fatal("no requests finished")
		}
		if res.PinnedPrefixPages == 0 {
			b.Fatal("prefix residency should charge the pools")
		}
	}
}

func BenchmarkCluster4xHeteroMigrate(b *testing.B)   { benchHetero(b, true) }
func BenchmarkCluster4xHeteroNoMigrate(b *testing.B) { benchHetero(b, false) }

// The §7.6 overhead analysis as direct testing.B microbenchmarks: the
// wall-clock cost of one scheduling decision on a stressed view (the
// paper reports ~0.07 ms for SGLang and ~0.4 ms for TokenFlow).

func stressedView(b *testing.B) *sched.View {
	b.Helper()
	cost, err := gpu.NewCostModel(gpu.H200, model.Llama3_8B)
	if err != nil {
		b.Fatal(err)
	}
	v := &sched.View{
		Now: simclock.FromSeconds(100), FreeTokens: 50_000, TotalTokens: 200_000,
		PageTokens: 16, Cost: cost, AvgIterTime: 20 * time.Millisecond,
	}
	clock := simclock.New()
	for i := 0; i < 128; i++ {
		r := request.New(i, 0, 512, 2048, 20)
		r.State = request.StateRunning
		r.PrefilledTokens = 512
		r.DeliverTokens(clock, 0, 40+i)
		r.CancelConsumption(clock)
		v.Running = append(v.Running, r)
	}
	for i := 0; i < 64; i++ {
		v.Waiting = append(v.Waiting, request.New(1000+i, simclock.FromSeconds(99), 512, 2048, 20))
	}
	return v
}

func BenchmarkOverheadSchedulerSGLang(b *testing.B) {
	v := stressedView(b)
	s := sched.NewSGLang()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Decide(v)
	}
}

func BenchmarkOverheadSchedulerAndes(b *testing.B) {
	v := stressedView(b)
	a := sched.NewAndes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Quantum = 0 // force a full quantum decision every call
		_ = a.Decide(v)
	}
}

func BenchmarkOverheadSchedulerTokenFlow(b *testing.B) {
	v := stressedView(b)
	s := core.MustNew(core.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ForceFullPass()
		_ = s.Decide(v)
	}
}
