// Burststress: the paper's long-term trace experiment in miniature
// (Figures 14-15). A bursty BurstGPT-like trace stresses the deployment;
// we sample the queued and running request counts over time for every
// system and print the temporal comparison.
//
//	go run ./examples/burststress
package main

import (
	"fmt"
	"log"

	"repro/tokenflow"
)

func main() {
	workload := tokenflow.BurstGPTSpikesWorkload(240, 3, 60, 400, 20, 14)
	fmt.Printf("trace: %d requests over 240s\n\n", len(workload))

	type series struct {
		system  tokenflow.System
		samples []tokenflow.Sample
		peakQ   int
	}
	var all []series
	for _, system := range tokenflow.Systems() {
		res, err := tokenflow.Run(tokenflow.Config{
			System:             system,
			GPU:                "H200",
			Model:              "Llama3-8B",
			MemFraction:        0.3,
			SampleEverySeconds: 5,
		}, workload)
		if err != nil {
			log.Fatal(err)
		}
		s := series{system: system, samples: res.Samples}
		for _, p := range res.Samples {
			if p.Queued > s.peakQ {
				s.peakQ = p.Queued
			}
		}
		all = append(all, s)
		fmt.Printf("%-15s peak queued %3d   mean TTFT %6.2fs   eff-thpt %7.1f tok/s\n",
			system, s.peakQ, res.MeanTTFT.Seconds(), res.EffectiveThroughput)
	}

	fmt.Println("\nqueued requests over time:")
	fmt.Printf("%6s", "t(s)")
	for _, s := range all {
		fmt.Printf(" %15s", s.system)
	}
	fmt.Println()
	maxLen := 0
	for _, s := range all {
		if len(s.samples) > maxLen {
			maxLen = len(s.samples)
		}
	}
	step := maxLen / 16
	if step < 1 {
		step = 1
	}
	for i := 0; i < maxLen; i += step {
		printed := false
		for _, s := range all {
			if i < len(s.samples) {
				if !printed {
					fmt.Printf("%6.0f", s.samples[i].AtSeconds)
					printed = true
				}
				fmt.Printf(" %15d", s.samples[i].Queued)
			} else {
				if !printed {
					fmt.Printf("%6s", "-")
					printed = true
				}
				fmt.Printf(" %15d", 0)
			}
		}
		fmt.Println()
	}
	fmt.Println("\nTokenFlow should hold the queued peak below the FCFS baselines during spikes (Figure 14).")
}
