// Observe: the flight recorder end to end. A session workload runs on a
// heterogeneous pool behind session-affinity routing with cost-modelled
// migration on a starved shared NIC — the configuration where the cost
// model earns its keep by declining migrations the wire would lose. The
// run records everything the observability layer offers: the lifecycle
// event bus, the per-tick telemetry series, and the simulator's
// self-profile, then exports all of it into ./observe-out/:
//
//	events.jsonl     one lifecycle event per line (machine-readable log)
//	trace.json       Chrome trace_event JSON — open at ui.perfetto.dev
//	series.csv       named telemetry series (queue depth, KV util, links)
//	BENCH_obs.json   the simulator's own per-phase wall-clock profile
//	attribution.json critical-path latency breakdown (phase quantiles)
//
// From the attribution report it prints where the run's latency went —
// the per-phase share of total E2E time — and renders the slowest
// request's causal span as a waterfall (the same view
// `tokenflow-trace slowest` gives offline).
//
// The example then replays the exported event log to walk one declined
// migration end to end: the arrival that triggered the divert, the route
// decision that steered the session off its pin holder, the cost model's
// verdict (wire ETA vs recompute estimate), and how the request fared
// afterwards — the exact workflow the JSONL export exists for.
//
// Finally it re-runs the pool with a scripted mid-run replica crash and
// 2-way pin redundancy (exports land in observe-out/chaos/) and walks
// the recovery from the event log: the crash, the orphan retries onto
// survivors, the host-mirror repins — and the crash-recovery waterfall
// of the hardest-hit request, whose lost time shows up as the span's
// retry phase.
//
//	go run ./examples/observe
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/tokenflow"
)

// event mirrors one line of events.jsonl.
type event struct {
	Seq     uint64  `json:"seq"`
	TNs     int64   `json:"t_ns"`
	Kind    string  `json:"kind"`
	Replica int     `json:"replica"`
	Request int     `json:"request"`
	Session int     `json:"session"`
	A       int64   `json:"a"`
	B       int64   `json:"b"`
	C       int64   `json:"c"`
	F       float64 `json:"f"`
	Label   string  `json:"label"`
}

func main() {
	// 200 multi-turn conversations over 3 minutes with 60s flash crowds.
	w := tokenflow.SessionSpikesWorkload(200, 180, 60, 20, 7)

	res, err := tokenflow.RunCluster(tokenflow.ClusterConfig{
		Config: tokenflow.Config{
			System: tokenflow.SystemTokenFlow,
			Model:  "Llama3-8B",
			// The full flight recorder, exported after the run.
			Obs: tokenflow.ObsSpec{
				Events:      true,
				Series:      true,
				Profile:     true,
				Attribution: true,
				Out:         "observe-out",
			},
			SampleEverySeconds: 0.25,
		},
		// 1 big + 2 small replicas: affinity routing overflows the small
		// ones under the spikes, so sessions get diverted off their pins.
		ReplicaSpecs: []tokenflow.ReplicaSpec{
			{GPU: "H200", Count: 1, MemFraction: 0.3},
			{GPU: "RTX-4090", Count: 2, MemFraction: 0.75},
		},
		Router:          tokenflow.RouterSessionAffinity,
		Migrate:         true,
		MigrationPolicy: tokenflow.MigrateCost,
		// One 1 GB/s NIC per replica: a queued prefix transfer often loses
		// to recomputing the prefix on the target, so the cost model
		// declines — those declines are what we trace below.
		Topology: &tokenflow.TopologySpec{
			Kind:     tokenflow.TopologySharedNIC,
			LinkGBps: 1,
		},
	}, w)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("run: %d requests, p99 TTFT %.2fs, %d migrations, %d declined by the cost model\n",
		res.Cluster.Total, res.Cluster.P99TTFT.Seconds(),
		res.Migrations, res.MigrationsDeclined)
	fmt.Printf("recorded %d lifecycle events -> observe-out/ "+
		"(open trace.json at ui.perfetto.dev)\n\n", res.Obs.EventCount())

	// Where did the latency go? The attribution report decomposes every
	// request's E2E time into exact causal phases.
	rep := res.Attribution
	var e2eTotal int64
	for _, m := range rep.Metrics {
		if m.Name == "e2e" {
			e2eTotal = m.TotalNS
		}
	}
	fmt.Printf("latency attribution over %d requests:\n", rep.Requests)
	for _, m := range rep.Metrics {
		// The phase rows decompose E2E exactly; skip the aggregate
		// ttft/e2e rows themselves.
		if m.Name == "ttft" || m.Name == "e2e" || m.Count == 0 || e2eTotal == 0 {
			continue
		}
		fmt.Printf("  %-9s %5.1f%% of E2E time  (p99 %8.2fms)\n",
			m.Name, 100*float64(m.TotalNS)/float64(e2eTotal), float64(m.P99NS)/1e6)
	}
	if len(rep.Slowest) > 0 {
		fmt.Println("\nslowest request of the run:")
		fmt.Print(tokenflow.Waterfall(rep.Slowest[0], 48))
	}
	fmt.Println()

	// Replay the export: find the first declined migration and walk its
	// session's lifecycle around the verdict.
	events, err := readEvents(filepath.Join("observe-out", "events.jsonl"))
	if err != nil {
		log.Fatal(err)
	}
	var decline *event
	for i := range events {
		if events[i].Kind == "migrate-decline" {
			decline = &events[i]
			break
		}
	}
	if decline == nil {
		fmt.Println("no migration was declined on this run")
	} else {
		walkDecline(events, decline)
	}

	chaosRecovery(w)
}

// walkDecline replays one declined migration's session lifecycle around
// the cost model's verdict.
func walkDecline(events []event, decline *event) {
	fmt.Printf("one declined migration, end to end (session %d):\n", decline.Session)
	shown := 0
	for _, e := range events {
		if e.Session != decline.Session || e.Kind == "decode" {
			continue
		}
		t := float64(e.TNs) / 1e9
		switch e.Kind {
		case "arrival":
			fmt.Printf("  t=%7.3fs  request %d arrives (%d prompt, %d output tokens)\n",
				t, e.Request, e.A, e.B)
		case "route":
			fmt.Printf("  t=%7.3fs  %s routes request %d -> replica %d (score %.1f)\n",
				t, e.Label, e.Request, e.Replica, e.F)
		case "queue":
			hit := "cold"
			if e.A > 0 {
				hit = fmt.Sprintf("%d cached prefix tokens", e.A)
			}
			fmt.Printf("  t=%7.3fs  request %d queued on replica %d (%s)\n",
				t, e.Request, e.Replica, hit)
		case "migrate-decline":
			fmt.Printf("  t=%7.3fs  cost model DECLINES migrating %.0f prefix tokens "+
				"replica %d -> %d: wire ETA %.3fs vs recompute %.3fs\n",
				t, e.F, e.Replica, e.A, float64(e.B)/1e9, float64(e.C)/1e9)
		case "migrate-accept":
			fmt.Printf("  t=%7.3fs  migration committed: replica %d -> %d (%d tokens, %d bytes)\n",
				t, e.Replica, e.A, e.B, e.C)
		case "kv-pin":
			fmt.Printf("  t=%7.3fs  replica %d pins the session prefix (%d tokens, %d pages)\n",
				t, e.Replica, e.A, e.B)
		case "first-token":
			fmt.Printf("  t=%7.3fs  request %d first token on replica %d\n",
				t, e.Request, e.Replica)
		case "complete":
			fmt.Printf("  t=%7.3fs  request %d completes (%d tokens generated)\n",
				t, e.Request, e.A)
		default:
			fmt.Printf("  t=%7.3fs  %s (replica %d, request %d)\n",
				t, e.Kind, e.Replica, e.Request)
		}
		if shown++; shown >= 24 {
			fmt.Println("  ... (session continues; see observe-out/events.jsonl)")
			break
		}
	}
}

// chaosRecovery re-runs the pool with a scripted mid-run crash of
// replica 1 and 2-way pin redundancy, then walks the recovery from the
// exported event log and renders the hardest-hit request's waterfall —
// its lost attempt, detection delay, and backoff all land in the span's
// retry phase.
func chaosRecovery(w tokenflow.Workload) {
	fmt.Println("\ncrash recovery: the same pool, plus a scripted mid-run crash")
	res, err := tokenflow.RunCluster(tokenflow.ClusterConfig{
		Config: tokenflow.Config{
			System: tokenflow.SystemTokenFlow,
			Model:  "Llama3-8B",
			// Redundancy mirrors live in the host prefix-cache tier.
			HostPrefixCache: true,
			Obs: tokenflow.ObsSpec{
				Events:      true,
				Attribution: true,
				Out:         filepath.Join("observe-out", "chaos"),
			},
		},
		ReplicaSpecs: []tokenflow.ReplicaSpec{
			{GPU: "H200", Count: 1, MemFraction: 0.3},
			{GPU: "RTX-4090", Count: 2, MemFraction: 0.75},
		},
		Router: tokenflow.RouterSessionAffinity,
		Chaos: &tokenflow.ChaosSpec{
			Faults:     []tokenflow.FaultSpec{{Kind: "crash", AtSeconds: 65, Replica: 1}},
			Redundancy: 2,
		},
	}, w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crash of replica 1 at t=65s: %d orphan(s) retried (%d failed), "+
		"%d replication transfers (%.1f GB) on the replicate class\n",
		res.Retries, res.RetryFailures, res.Replications,
		float64(res.ReplicatedBytes)/1e9)

	events, err := readEvents(filepath.Join("observe-out", "chaos", "events.jsonl"))
	if err != nil {
		log.Fatal(err)
	}
	shown := 0
	for _, e := range events {
		t := float64(e.TNs) / 1e9
		switch e.Kind {
		case "crash":
			fmt.Printf("  t=%7.3fs  replica %d CRASHES: %d in-flight orphaned, "+
				"%d pins and %d host mirrors lost\n", t, e.Replica, e.A, e.B, e.C)
		case "retry":
			switch e.Label {
			case "reroute":
				fmt.Printf("  t=%7.3fs  orphan %d retries (attempt %d) -> replica %d\n",
					t, e.Request, e.A, e.Replica)
			case "gateway":
				fmt.Printf("  t=%7.3fs  orphan %d re-buffers in the gateway (attempt %d)\n",
					t, e.Request, e.A)
			case "failed":
				fmt.Printf("  t=%7.3fs  orphan %d exhausts its retry budget\n", t, e.Request)
			default:
				continue
			}
		case "replicate":
			// The steady redundancy copies are background noise here; show
			// only the post-crash repins that restore lost pins.
			if e.Label != "repin" {
				continue
			}
			fmt.Printf("  t=%7.3fs  replica %d repins session %d from its host mirror "+
				"(%d tokens)\n", t, e.Replica, e.Session, e.B)
		default:
			continue
		}
		if shown++; shown >= 16 {
			fmt.Println("  ... (see observe-out/chaos/events.jsonl)")
			break
		}
	}

	// The recovery cost is first-class in attribution: find the span that
	// lost the most time to the crash and render its waterfall.
	var worst *tokenflow.AttributionSpan
	for i := range res.Attribution.Slowest {
		s := &res.Attribution.Slowest[i]
		if s.Phases[tokenflow.PhaseRetry] > 0 &&
			(worst == nil || s.Phases[tokenflow.PhaseRetry] > worst.Phases[tokenflow.PhaseRetry]) {
			worst = s
		}
	}
	if worst != nil {
		fmt.Printf("\nhardest-hit request (%.2fs lost to the crash):\n",
			worst.Phases[tokenflow.PhaseRetry].Seconds())
		fmt.Print(tokenflow.Waterfall(*worst, 48))
	}
}

// readEvents parses an events.jsonl export.
func readEvents(path string) ([]event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []event
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var e event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, sc.Err()
}
