// Autoscale: SLO-driven replica autoscaling with KV pre-warming. A
// multi-turn session workload with periodic flash crowds is served three
// ways: a fixed 1-replica pool (cheap but the spikes bury it), a fixed
// 4-replica pool (fast but burns GPU-seconds all run long), and a
// 1..4-replica autoscaled pool that grows on queue pressure and shrinks
// when the crowd passes — paying a warm-up latency per scale-up,
// optionally shortened in effect by pre-warming the new replica with the
// hottest pinned session prefixes over the interconnect. The autoscaled
// pool lands between the fixed pools on both axes: near-fixed-4 tail
// latency at near-fixed-1 GPU cost, and pre-warming lifts the prefix hit
// rate on the replicas that scaled in.
//
//	go run ./examples/autoscale
package main

import (
	"fmt"
	"log"

	"repro/tokenflow"
)

func main() {
	// 220 conversations over 4 minutes; half of them open in flash crowds
	// every 60s. Each turn's prompt extends the previous turn's context.
	w := tokenflow.SessionSpikesWorkload(220, 240, 60, 20, 7)

	cfg := tokenflow.Config{
		System: tokenflow.SystemTokenFlow,
		GPU:    "RTX-4090",
		Model:  "Llama3-8B",
	}

	run := func(replicas int, spec *tokenflow.AutoscaleSpec) *tokenflow.ClusterResult {
		res, err := tokenflow.RunCluster(tokenflow.ClusterConfig{
			Config:    cfg,
			Replicas:  replicas,
			Router:    tokenflow.RouterSessionAffinity,
			Autoscale: spec,
		}, w)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	auto := func(prewarm bool) *tokenflow.AutoscaleSpec {
		return &tokenflow.AutoscaleSpec{
			Policy:      tokenflow.AutoscaleQueuePressure,
			MinReplicas: 1, MaxReplicas: 4,
			WarmupSeconds: 5,
			Prewarm:       prewarm,
		}
	}

	fmt.Printf("%-22s %10s %10s %8s %5s %7s %12s\n",
		"pool", "p99-TTFT", "QoS", "GPU-s", "ups", "stalls", "prewarm-tok")
	row := func(name string, res *tokenflow.ClusterResult) {
		fmt.Printf("%-22s %9.2fs %10.1f %8.0f %5d %7d %12d\n",
			name, res.Cluster.P99TTFT.Seconds(), res.Cluster.QoS,
			res.GPUSeconds, res.ScaleUps, res.WarmupStalls, res.PrewarmedTokens)
	}
	row("fixed 1 replica", run(1, nil))
	row("fixed 4 replicas", run(4, nil))
	cold := run(4, auto(false))
	row("autoscaled 1..4 cold", cold)
	warm := run(4, auto(true))
	row("autoscaled 1..4 warm", warm)

	// The replica lifecycle the control loop drove: warm-ups when the
	// flash crowds land, drains when they pass.
	fmt.Printf("\nautoscaled (pre-warmed) lifecycle:\n")
	for _, ev := range warm.ScaleEvents {
		fmt.Printf("  t=%7.2fs  replica %d  %s\n", ev.AtSeconds, ev.Replica, ev.Kind)
	}

	// Pre-warming pays on the replicas that scaled in: their first
	// requests find the hottest sessions' KV already resident.
	hitRate := func(res *tokenflow.ClusterResult) float64 {
		var hits, routed int64
		for _, rr := range res.Replicas[1:] {
			hits += rr.PrefixHits
			routed += int64(rr.Routed)
		}
		if routed == 0 {
			return 0
		}
		return float64(hits) / float64(routed)
	}
	fmt.Printf("\npost-scale-up prefix hit rate: %.1f%% cold vs %.1f%% pre-warmed\n",
		100*hitRate(cold), 100*hitRate(warm))
}
