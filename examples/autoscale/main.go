// Autoscale: SLO-driven replica autoscaling with KV pre-warming, across
// two policy generations. A multi-turn session workload with periodic
// flash crowds is served by fixed pools (1 replica: cheap but buried;
// 4 replicas: fast but burning GPU-seconds all run long) and by 1..4
// autoscaled pools under four policies — reactive queue pressure,
// kv-utilization, a PID-style slo-target controller on the windowed P99
// TTFT, and a Holt-forecast predictive policy that pre-scales a warm-up
// ahead of predicted demand. The autoscaled pools land between the fixed
// pools on both axes, and pre-warming lifts the prefix hit rate on the
// replicas that scaled in.
//
// The second half demonstrates scale-to-zero: with MinReplicas 0 the pool
// goes fully dark between bursts, a gateway queue buffers the next
// burst's arrivals while the first replica cold-starts, and the buffered
// wait lands inside their TTFT.
//
//	go run ./examples/autoscale
package main

import (
	"fmt"
	"log"
	"time"

	"repro/tokenflow"
)

func main() {
	// 220 conversations over 4 minutes; half of them open in flash crowds
	// every 60s. Each turn's prompt extends the previous turn's context.
	w := tokenflow.SessionSpikesWorkload(220, 240, 60, 20, 7)

	cfg := tokenflow.Config{
		System: tokenflow.SystemTokenFlow,
		GPU:    "RTX-4090",
		Model:  "Llama3-8B",
	}

	run := func(replicas int, spec *tokenflow.AutoscaleSpec) *tokenflow.ClusterResult {
		res, err := tokenflow.RunCluster(tokenflow.ClusterConfig{
			Config:    cfg,
			Replicas:  replicas,
			Router:    tokenflow.RouterSessionAffinity,
			Autoscale: spec,
		}, w)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	auto := func(prewarm bool) *tokenflow.AutoscaleSpec {
		return &tokenflow.AutoscaleSpec{
			Policy:      tokenflow.AutoscaleQueuePressure,
			MinReplicas: 1, MaxReplicas: 4,
			WarmupSeconds: 5,
			Prewarm:       prewarm,
		}
	}

	fmt.Printf("%-22s %10s %10s %8s %5s %7s %12s\n",
		"pool", "p99-TTFT", "QoS", "GPU-s", "ups", "stalls", "prewarm-tok")
	row := func(name string, res *tokenflow.ClusterResult) {
		fmt.Printf("%-22s %9.2fs %10.1f %8.0f %5d %7d %12d\n",
			name, res.Cluster.P99TTFT.Seconds(), res.Cluster.QoS,
			res.GPUSeconds, res.ScaleUps, res.WarmupStalls, res.PrewarmedTokens)
	}
	row("fixed 1 replica", run(1, nil))
	row("fixed 4 replicas", run(4, nil))
	cold := run(4, auto(false))
	row("autoscaled 1..4 cold", cold)
	warm := run(4, auto(true))
	row("autoscaled 1..4 warm", warm)
	row("slo-target 2.5s", run(4, &tokenflow.AutoscaleSpec{
		Policy:      tokenflow.AutoscaleSLOTarget,
		MinReplicas: 1, MaxReplicas: 4,
		WarmupSeconds: 5,
		TargetP99TTFT: 2500 * time.Millisecond,
		Prewarm:       true,
	}))
	pred := run(4, &tokenflow.AutoscaleSpec{
		Policy:      tokenflow.AutoscalePredictive,
		MinReplicas: 1, MaxReplicas: 4,
		WarmupSeconds: 5,
		Prewarm:       true,
	})
	row("predictive", pred)
	fmt.Printf("\npredictive forecast: MAE %.2f req/s over %d scored forecasts\n",
		pred.ForecastError, pred.ForecastSamples)

	// The replica lifecycle the control loop drove: warm-ups when the
	// flash crowds land, drains when they pass.
	fmt.Printf("\nautoscaled (pre-warmed) lifecycle:\n")
	for _, ev := range warm.ScaleEvents {
		fmt.Printf("  t=%7.2fs  replica %d  %s\n", ev.AtSeconds, ev.Replica, ev.Kind)
	}

	// Pre-warming pays on the replicas that scaled in: their first
	// requests find the hottest sessions' KV already resident.
	hitRate := func(res *tokenflow.ClusterResult) float64 {
		var hits, routed int64
		for _, rr := range res.Replicas[1:] {
			hits += rr.PrefixHits
			routed += int64(rr.Routed)
		}
		if routed == 0 {
			return 0
		}
		return float64(hits) / float64(routed)
	}
	fmt.Printf("\npost-scale-up prefix hit rate: %.1f%% cold vs %.1f%% pre-warmed\n",
		100*hitRate(cold), 100*hitRate(warm))

	// Scale-to-zero: two widely separated bursts; between them the pool
	// goes fully dark and burns nothing. The second burst buffers in the
	// gateway while replica 0 cold-starts — its queue time is inside TTFT.
	var bursts tokenflow.Workload
	for _, at := range []float64{0, 180} {
		for i := 0; i < 12; i++ {
			bursts = append(bursts, tokenflow.Request{
				ArrivalSeconds: at, PromptTokens: 512, OutputTokens: 128, RatePerSec: 20,
			})
		}
	}
	zero, err := tokenflow.RunCluster(tokenflow.ClusterConfig{
		Config:   cfg,
		Replicas: 2,
		Router:   tokenflow.RouterLeastQueue,
		Autoscale: &tokenflow.AutoscaleSpec{
			Policy:        tokenflow.AutoscaleSLOTarget,
			ScaleToZero:   true,
			WarmupSeconds: 5,
		},
	}, bursts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nscale-to-zero, two bursts 180s apart (5s cold start):\n")
	fmt.Printf("  %d/%d finished, %d buffered in the gateway, %d shed\n",
		zero.Cluster.Finished, len(bursts), zero.GatewayBuffered, zero.GatewayShed)
	fmt.Printf("  GPU-seconds %.0f vs %.0f for an always-on single replica\n",
		zero.GPUSeconds, zero.Cluster.MakespanSec)
	fmt.Printf("  p99 TTFT %.2fs (the ~5s cold start is inside it)\n",
		zero.Cluster.P99TTFT.Seconds())
	for _, ev := range zero.ScaleEvents {
		fmt.Printf("  t=%7.2fs  replica %d  %s\n", ev.AtSeconds, ev.Replica, ev.Kind)
	}
}
