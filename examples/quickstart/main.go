// Quickstart: serve a flash crowd with TokenFlow and compare it with the
// SGLang baseline on the simulated H200.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/tokenflow"
)

func main() {
	// 300 requests arrive at once: ~512-token prompts, ~4096-token
	// responses, clients reading at 20 tokens/s.
	workload := tokenflow.BurstWorkload(300, 512, 4096, 20, 42)

	for _, system := range []tokenflow.System{tokenflow.SystemSGLang, tokenflow.SystemTokenFlow} {
		res, err := tokenflow.Run(tokenflow.Config{
			System: system,
			GPU:    "H200",
			Model:  "Llama3-8B",
			// The paper's H200 experiments start with mem-frac 0.3 (§7.3).
			MemFraction: 0.3,
		}, workload)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s finished %d/%d  eff-thpt %7.1f tok/s  thpt %7.1f tok/s  mean TTFT %7.2fs  P99 TTFT %7.2fs\n",
			res.System, res.Finished, res.Total,
			res.EffectiveThroughput, res.Throughput,
			res.MeanTTFT.Seconds(), res.P99TTFT.Seconds())
	}
	fmt.Println("\nTokenFlow should show several times higher effective throughput and far lower TTFT under this burst.")
}
