// Cluster: horizontally scaling a chat deployment. A multi-turn session
// workload with periodic flash crowds is served by 4 TokenFlow replicas
// under each routing policy; the router that keeps sessions on the
// replica holding their prefix KV wins the tail latency race. A second
// pass runs an imbalanced heterogeneous pool (1×H200 + 2×RTX-4090) and
// toggles cross-replica KV migration: when routing diverts a session off
// its pin holder, shipping the pinned prefix over the interconnect keeps
// the reuse chain alive instead of recomputing it — more prefix hits,
// lower mean TTFT.
//
// A third pass is the "when migration loses" walkthrough: the same
// hetero pool on a starved shared-NIC topology (every transfer out of a
// replica crosses its one uplink), with the host-tier prefix cache on.
// Always-migrate queues diverted turns behind the saturated NIC; the
// cost model prices each transfer against recomputing the prefix on the
// target, declines the ones the wire would lose, and holds the tail.
//
//	go run ./examples/cluster
package main

import (
	"fmt"
	"log"

	"repro/tokenflow"
)

func main() {
	// 300 conversations over 4 minutes; half of them open in flash crowds
	// every 60s. Each turn's prompt extends the previous turn's context.
	w := tokenflow.SessionSpikesWorkload(300, 240, 60, 20, 7)

	cfg := tokenflow.Config{
		System: tokenflow.SystemTokenFlow,
		GPU:    "RTX-4090",
		Model:  "Llama3-8B",
	}

	fmt.Printf("%-18s %10s %10s %10s %12s %6s\n",
		"router", "p99-TTFT", "mean-TTFT", "QoS", "prefix-hits", "imbal")
	for _, pol := range tokenflow.RouterPolicies() {
		res, err := tokenflow.RunCluster(tokenflow.ClusterConfig{
			Config:   cfg,
			Replicas: 4,
			Router:   pol,
		}, w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %9.2fs %9.2fs %10.1f %12d %5.2fx\n",
			pol,
			res.Cluster.P99TTFT.Seconds(),
			res.Cluster.MeanTTFT.Seconds(),
			res.Cluster.QoS,
			res.PrefixHits,
			res.Imbalance)
	}

	// Heterogeneous pool, affinity routing, migration on vs off. Prefix
	// residency is charged to the pools (pinned pages > 0), and when an
	// overloaded pin holder forces a diversion, migration ships the
	// session's pinned KV to the new replica instead of recomputing it.
	fmt.Printf("\n1×H200 + 2×RTX-4090, session-affinity:\n")
	fmt.Printf("%-12s %10s %12s %12s %12s\n",
		"migration", "mean-TTFT", "prefix-hits", "pinned-pages", "migrations")
	for _, migrate := range []bool{false, true} {
		res, err := tokenflow.RunCluster(tokenflow.ClusterConfig{
			Config: cfg,
			ReplicaSpecs: []tokenflow.ReplicaSpec{
				{GPU: "H200", MemFraction: 0.3, Count: 1},
				{GPU: "RTX-4090", MemFraction: 0.9, Count: 2},
			},
			Router:  tokenflow.RouterSessionAffinity,
			Migrate: migrate,
		}, w)
		if err != nil {
			log.Fatal(err)
		}
		name := "off"
		if migrate {
			name = "on"
		}
		fmt.Printf("%-12s %9.3fs %12d %12d %12d\n",
			name,
			res.Cluster.MeanTTFT.Seconds(),
			res.PrefixHits,
			res.PinnedPrefixPages,
			res.Migrations)
	}

	// When migration loses: the same pool behind one starved 0.05 GB/s NIC
	// per replica. Shipping a pinned prefix now costs ~seconds of queued
	// wire versus ~0.1s of recompute, so always-migrate drags every
	// diverted turn through the bottleneck while the cost model declines
	// and recomputes. The host-tier prefix cache rides along: evicted pins
	// reload over host PCIe whenever that link (measured, not assumed)
	// beats recompute.
	hostCfg := cfg
	hostCfg.HostPrefixCache = true
	fmt.Printf("\nsame pool, shared 0.05 GB/s NICs (when migration loses):\n")
	fmt.Printf("%-12s %10s %10s %12s %12s %12s\n",
		"policy", "p99-TTFT", "mean-TTFT", "migrations", "declined", "host-reloads")
	for _, policy := range tokenflow.MigrationPolicies() {
		res, err := tokenflow.RunCluster(tokenflow.ClusterConfig{
			Config: hostCfg,
			ReplicaSpecs: []tokenflow.ReplicaSpec{
				{GPU: "H200", MemFraction: 0.3, Count: 1},
				{GPU: "RTX-4090", MemFraction: 0.9, Count: 2},
			},
			Router:          tokenflow.RouterSessionAffinity,
			Migrate:         true,
			MigrationPolicy: policy,
			Topology: &tokenflow.TopologySpec{
				Kind:     tokenflow.TopologySharedNIC,
				LinkGBps: 0.05,
			},
		}, w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %9.2fs %9.3fs %12d %12d %12d\n",
			policy,
			res.Cluster.P99TTFT.Seconds(),
			res.Cluster.MeanTTFT.Seconds(),
			res.Migrations,
			res.MigrationsDeclined,
			res.HostReloads)
		if policy == tokenflow.MigrateCost {
			fmt.Printf("  transfer ledger:")
			for _, cs := range res.Transfers {
				if cs.Transfers > 0 {
					fmt.Printf(" %s=%0.1fMB", cs.Class, float64(cs.Bytes)/1e6)
				}
			}
			fmt.Println()
		}
	}
}
