// Cluster: horizontally scaling a chat deployment. A multi-turn session
// workload with periodic flash crowds is served by 4 TokenFlow replicas
// under each routing policy; the router that keeps sessions on the
// replica holding their prefix KV wins the tail latency race.
//
//	go run ./examples/cluster
package main

import (
	"fmt"
	"log"

	"repro/tokenflow"
)

func main() {
	// 300 conversations over 4 minutes; half of them open in flash crowds
	// every 60s. Each turn's prompt extends the previous turn's context.
	w := tokenflow.SessionSpikesWorkload(300, 240, 60, 20, 7)

	cfg := tokenflow.Config{
		System: tokenflow.SystemTokenFlow,
		GPU:    "RTX-4090",
		Model:  "Llama3-8B",
	}

	fmt.Printf("%-18s %10s %10s %10s %12s %6s\n",
		"router", "p99-TTFT", "mean-TTFT", "QoS", "prefix-hits", "imbal")
	for _, pol := range tokenflow.RouterPolicies() {
		res, err := tokenflow.RunCluster(tokenflow.ClusterConfig{
			Config:   cfg,
			Replicas: 4,
			Router:   pol,
		}, w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %9.2fs %9.2fs %10.1f %12d %5.2fx\n",
			pol,
			res.Cluster.P99TTFT.Seconds(),
			res.Cluster.MeanTTFT.Seconds(),
			res.Cluster.QoS,
			res.PrefixHits,
			res.Imbalance)
	}
}
