// Chatbot: a customer-support deployment with heterogeneous readers.
// Requests arrive in a BurstGPT-like bursty process; each client reads at
// a human speed drawn from the paper's Figure 1 table (language and age
// dependent), and the operator tracks streaming QoS per reader class.
//
//	go run ./examples/chatbot
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/tokenflow"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// Human reading speeds by audience segment (tokens/s), after the
	// paper's Figure 1: these are raw comprehension rates; interactive
	// products typically target 2-3x for skimming, so we scale by 2.5.
	segments := []struct {
		name string
		rate float64
	}{
		{"teen", 2.5 * 4.2},
		{"adult", 2.5 * 5.6},
		{"senior", 2.5 * 3.9},
	}

	base := tokenflow.BurstGPTWorkload(120, 4, 0, 7)
	var workload tokenflow.Workload
	segOf := make([]string, len(base))
	for i, r := range base {
		seg := segments[rng.Intn(len(segments))]
		r.RatePerSec = seg.rate
		segOf[i] = seg.name
		workload = append(workload, r)
	}

	res, err := tokenflow.Run(tokenflow.Config{
		System:      tokenflow.SystemTokenFlow,
		GPU:         "A6000",
		Model:       "Qwen2.5-7B",
		MemFraction: 0.9,
	}, workload)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("served %d/%d requests, effective throughput %.1f tok/s, QoS %.1f\n\n",
		res.Finished, res.Total, res.EffectiveThroughput, res.QoS)
	type agg struct {
		n        int
		ttft     float64
		rebuffer float64
	}
	bySeg := map[string]*agg{}
	for i, r := range res.Requests {
		a := bySeg[segOf[i]]
		if a == nil {
			a = &agg{}
			bySeg[segOf[i]] = a
		}
		a.n++
		a.ttft += r.TTFT.Seconds()
		a.rebuffer += r.Rebuffer.Seconds()
	}
	fmt.Println("per-segment experience:")
	for _, seg := range segments {
		a := bySeg[seg.name]
		if a == nil || a.n == 0 {
			continue
		}
		fmt.Printf("  %-7s %3d readers  mean TTFT %6.2fs  mean rebuffer %6.2fs\n",
			seg.name, a.n, a.ttft/float64(a.n), a.rebuffer/float64(a.n))
	}
}
