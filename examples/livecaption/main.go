// Livecaption: real-time captioning requires steady token delivery at the
// listener's speech rate — stalls are immediately visible. This example
// runs a mixed-rate burst (the paper's Figure 19 scenario: 40% of streams
// at 15 tokens/s, 60% at 20 tokens/s) and verifies each class is paced at
// its own target without manual configuration.
//
//	go run ./examples/livecaption
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/tokenflow"
)

func main() {
	rng := rand.New(rand.NewSource(19))
	var workload tokenflow.Workload
	for i := 0; i < 160; i++ {
		rate := 20.0
		if rng.Float64() < 0.4 {
			rate = 15.0
		}
		workload = append(workload, tokenflow.Request{
			PromptTokens: 256,
			OutputTokens: 900,
			RatePerSec:   rate,
		})
	}

	res, err := tokenflow.Run(tokenflow.Config{
		System: tokenflow.SystemTokenFlow,
		GPU:    "H200",
		Model:  "Llama3-8B",
	}, workload)
	if err != nil {
		log.Fatal(err)
	}

	type agg struct {
		n       int
		stall   float64
		deliver float64
	}
	classes := map[float64]*agg{15: {}, 20: {}}
	for i, r := range res.Requests {
		c := classes[workload[i].RatePerSec]
		c.n++
		c.stall += r.Rebuffer.Seconds()
		if n := len(r.TokenTimesSeconds); n >= 2 {
			span := r.TokenTimesSeconds[n-1] - r.TokenTimesSeconds[0]
			if span > 0 {
				c.deliver += float64(n-1) / span
			}
		}
	}
	fmt.Printf("served %d/%d caption streams\n\n", res.Finished, res.Total)
	for _, rate := range []float64{15, 20} {
		c := classes[rate]
		fmt.Printf("class %2.0f tok/s: %3d streams, mean generation pace %5.1f tok/s, mean stall %5.2fs\n",
			rate, c.n, c.deliver/float64(c.n), c.stall/float64(c.n))
	}
	fmt.Println("\nHigher-rate streams drain buffers faster and gain implicit scheduling priority (§7.4).")
}
