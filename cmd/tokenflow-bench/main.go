// Command tokenflow-bench regenerates the paper's tables and figures on
// the simulated substrate and prints them as aligned text tables.
//
// Usage:
//
//	tokenflow-bench            # run everything, paper order
//	tokenflow-bench fig16 tab02
//	TOKENFLOW_SCALE=0.25 tokenflow-bench fig14
//
// -obs-profile runs the fixed observability reference scenario (an
// autoscaling, migrating, host-cached cluster with the full flight
// recorder on) and writes the simulator's self-profile as BENCH_obs.json
// instead of the experiment tables; -obs-baseline compares it against a
// committed baseline and exits non-zero when any phase's per-call average
// regressed by more than 2x:
//
//	tokenflow-bench -obs-profile BENCH_obs.json -obs-baseline old.json
//
// -core-profile runs the core scale scenario (the "scale" experiment: 500
// round-robin replicas serving ~1M session-turn requests on the sharded
// executor) and writes the simulator's throughput envelope as
// BENCH_core.json; -core-baseline compares it against a committed baseline
// with the same 2x rule:
//
//	tokenflow-bench -core-profile BENCH_core.json -core-baseline old.json
//
// -scale-trace runs the same scale scenario with the flight recorder's
// event bus and attribution layer on and exports events.jsonl +
// attribution.json into the directory — the input for `tokenflow-trace`.
// Event recording retains everything in memory, so pair it with a reduced
// TOKENFLOW_SCALE:
//
//	TOKENFLOW_SCALE=0.02 tokenflow-bench -scale-trace scale-trace/
//
// -routing-curve runs the routing experiment's staleness sweep (indexed
// session-affinity vs the omniscient references across event-propagation
// lags) and writes the curve as CSV — the CI artifact behind the "routing"
// table:
//
//	tokenflow-bench -routing-curve routing-curve.csv
//
// -chaos-csv runs the chaos experiment's three cells (fault-free,
// mid-spike crash, crash with 2-way pin redundancy) and writes the
// recovery table as CSV — the CI artifact behind the "chaos" table:
//
//	tokenflow-bench -chaos-csv chaos.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/tokenflow"
)

// obsRegressionFactor is the CI gate: a phase whose per-call average
// exceeds this multiple of the committed baseline fails the run.
const obsRegressionFactor = 2.0

// runObsProfile runs the observability reference scenario, writes its
// BENCH_obs.json to path, and gates it against baseline when given.
func runObsProfile(path, baseline string) error {
	// A fixed, deterministic scenario that exercises every profiled phase:
	// autoscaling (control ticks), serving (engine steps), and migration +
	// pre-warm + host-cache traffic on a contended NIC (fabric settles).
	w := tokenflow.SessionSpikesWorkload(200, 180, 60, 20, 7)
	cfg := tokenflow.ClusterConfig{
		Config: tokenflow.Config{
			System:             tokenflow.SystemTokenFlow,
			HostPrefixCache:    true,
			SampleEverySeconds: 0.25,
			Obs: tokenflow.ObsSpec{
				Events: true, Series: true, Profile: true, Attribution: true,
			},
		},
		Replicas:        3,
		Router:          tokenflow.RouterSessionAffinity,
		Migrate:         true,
		MigrationPolicy: tokenflow.MigrateCost,
		Topology:        &tokenflow.TopologySpec{Kind: tokenflow.TopologySharedNIC, LinkGBps: 2},
		Autoscale: &tokenflow.AutoscaleSpec{
			Policy:        tokenflow.AutoscaleSLOTarget,
			MaxReplicas:   3,
			WarmupSeconds: 4,
			Prewarm:       true,
		},
	}
	res, err := tokenflow.RunCluster(cfg, w)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := res.Obs.WriteProfileJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("obs profile: %d events, %d finished requests -> %s\n",
		res.Obs.EventCount(), res.Cluster.Finished, path)
	if baseline == "" {
		return nil
	}
	curData, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	cur, err := obs.ReadBenchReport(curData)
	if err != nil {
		return err
	}
	baseData, err := os.ReadFile(baseline)
	if err != nil {
		return err
	}
	base, err := obs.ReadBenchReport(baseData)
	if err != nil {
		return err
	}
	if err := obs.CompareBench(cur, base, obsRegressionFactor); err != nil {
		return err
	}
	fmt.Printf("obs profile: within %.1fx of baseline %s\n", obsRegressionFactor, baseline)
	return nil
}

// benchPhase builds one BENCH_core phase: the run's wall time amortized
// over calls (a run, a request, a token).
func benchPhase(calls uint64, wall time.Duration) obs.BenchPhase {
	p := obs.BenchPhase{Calls: calls, TotalNS: wall.Nanoseconds()}
	if calls > 0 {
		p.AvgNS = p.TotalNS / int64(calls)
	}
	return p
}

// runCoreProfile runs the core scale scenario, writes its BENCH_core.json
// to path, and gates it against baseline when given. Unlike the obs
// profile — per-phase internal timings — the core profile is the outside
// view: wall time per run, per finished request, and per generated token.
func runCoreProfile(path, baseline string, shards int) error {
	run, err := experiments.RunScale(shards)
	if err != nil {
		return err
	}
	rep := obs.BenchReport{
		Scenario: fmt.Sprintf("core-scale-%dx%d", run.Replicas, run.Shards),
		Events:   int(run.Events),
		WallNS:   run.Wall.Nanoseconds(),
		Phases: map[string]obs.BenchPhase{
			"run_total":   benchPhase(1, run.Wall),
			"per_request": benchPhase(uint64(run.Requests), run.Wall),
			"per_token":   benchPhase(uint64(run.OutputTokens), run.Wall),
		},
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("core profile: %d replicas / %d shards, %d requests, %d tokens, %d events in %.1fs -> %s\n",
		run.Replicas, run.Shards, run.Requests, run.OutputTokens, run.Events,
		run.Wall.Seconds(), path)
	if baseline == "" {
		return nil
	}
	baseData, err := os.ReadFile(baseline)
	if err != nil {
		return err
	}
	base, err := obs.ReadBenchReport(baseData)
	if err != nil {
		return err
	}
	if err := obs.CompareBench(rep, base, obsRegressionFactor); err != nil {
		return err
	}
	fmt.Printf("core profile: within %.1fx of baseline %s\n", obsRegressionFactor, baseline)
	return nil
}

func main() {
	obsProfile := flag.String("obs-profile", "",
		"run the observability reference scenario and write BENCH_obs.json to `file` (skips the experiment tables)")
	obsBaseline := flag.String("obs-baseline", "",
		"compare -obs-profile output against this committed BENCH_obs.json; exit non-zero on >2x per-phase regression")
	coreProfile := flag.String("core-profile", "",
		"run the core scale scenario (500 replicas / ~1M requests, sharded) and write BENCH_core.json to `file` (skips the experiment tables)")
	coreBaseline := flag.String("core-baseline", "",
		"compare -core-profile output against this committed BENCH_core.json; exit non-zero on >2x per-phase regression")
	shards := flag.Int("shards", 8,
		"shard goroutines for the -core-profile run (results are shard-count independent; this only sets parallelism)")
	scaleTrace := flag.String("scale-trace", "",
		"run the scale scenario with event tracing + attribution on and export events.jsonl and attribution.json into `dir` (use a reduced TOKENFLOW_SCALE)")
	routingCurve := flag.String("routing-curve", "",
		"run the routing staleness sweep and write the quality-vs-lag curve as CSV to `file` (skips the experiment tables)")
	chaosCSV := flag.String("chaos-csv", "",
		"run the chaos recovery cells and write the crash-damage-vs-redundancy table as CSV to `file` (skips the experiment tables)")
	flag.Parse()
	if *obsProfile != "" {
		if err := runObsProfile(*obsProfile, *obsBaseline); err != nil {
			fmt.Fprintf(os.Stderr, "obs profile: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *coreProfile != "" {
		if err := runCoreProfile(*coreProfile, *coreBaseline, *shards); err != nil {
			fmt.Fprintf(os.Stderr, "core profile: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *scaleTrace != "" {
		run, err := experiments.RunScaleTraced(*shards, *scaleTrace)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scale trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("scale trace: %d replicas / %d shards, %d requests, %d events in %.1fs -> %s\n",
			run.Replicas, run.Shards, run.Requests, run.Events, run.Wall.Seconds(), *scaleTrace)
		return
	}
	if *routingCurve != "" {
		curve, err := experiments.RunRoutingCurve()
		if err != nil {
			fmt.Fprintf(os.Stderr, "routing curve: %v\n", err)
			os.Exit(1)
		}
		f, err := os.Create(*routingCurve)
		if err != nil {
			fmt.Fprintf(os.Stderr, "routing curve: %v\n", err)
			os.Exit(1)
		}
		if err := experiments.WriteRoutingCSV(f, curve); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "routing curve: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "routing curve: %v\n", err)
			os.Exit(1)
		}
		freshWins, staleLoses := curve.Crossover()
		fmt.Printf("routing curve: %d staleness points -> %s (fresh beats least-queue: %v; stalest loses: %v)\n",
			len(curve.Points), *routingCurve, freshWins, staleLoses)
		return
	}
	if *chaosCSV != "" {
		cells, err := experiments.RunChaosCells()
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaos csv: %v\n", err)
			os.Exit(1)
		}
		f, err := os.Create(*chaosCSV)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaos csv: %v\n", err)
			os.Exit(1)
		}
		if err := experiments.WriteChaosCSV(f, cells); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "chaos csv: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "chaos csv: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("chaos cells: crash P99 %.2fs vs K=2 %.2fs (baseline %.2fs) -> %s\n",
			cells.PostCrashP99(cells.Crash).Seconds(),
			cells.PostCrashP99(cells.Redundant).Seconds(),
			cells.PostCrashP99(cells.Baseline).Seconds(), *chaosCSV)
		return
	}
	ids := flag.Args()
	var exps []experiments.Experiment
	if len(ids) == 0 {
		exps = experiments.All()
	} else {
		for _, id := range ids {
			e, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; known:", id)
				for _, k := range experiments.All() {
					fmt.Fprintf(os.Stderr, " %s", k.ID)
				}
				fmt.Fprintln(os.Stderr)
				os.Exit(2)
			}
			exps = append(exps, e)
		}
	}
	fmt.Printf("TokenFlow evaluation harness (scale=%.2f)\n\n", experiments.Scale)
	for _, e := range exps {
		start := time.Now()
		tbl, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Print(tbl.Format())
		fmt.Printf("   (%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	}
}
