// Command tokenflow-bench regenerates the paper's tables and figures on
// the simulated substrate and prints them as aligned text tables.
//
// Usage:
//
//	tokenflow-bench            # run everything, paper order
//	tokenflow-bench fig16 tab02
//	TOKENFLOW_SCALE=0.25 tokenflow-bench fig14
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	ids := os.Args[1:]
	var exps []experiments.Experiment
	if len(ids) == 0 {
		exps = experiments.All()
	} else {
		for _, id := range ids {
			e, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; known:", id)
				for _, k := range experiments.All() {
					fmt.Fprintf(os.Stderr, " %s", k.ID)
				}
				fmt.Fprintln(os.Stderr)
				os.Exit(2)
			}
			exps = append(exps, e)
		}
	}
	fmt.Printf("TokenFlow evaluation harness (scale=%.2f)\n\n", experiments.Scale)
	for _, e := range exps {
		start := time.Now()
		tbl, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Print(tbl.Format())
		fmt.Printf("   (%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	}
}
