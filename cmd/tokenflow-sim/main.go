// Command tokenflow-sim runs one simulated deployment against one
// generated workload and prints the serving report.
//
//	tokenflow-sim -system tokenflow -gpu H200 -model Llama3-8B \
//	    -workload burst -n 300 -prompt 512 -output 4096 -rate 20
//
// With -replicas > 1 it simulates a multi-replica cluster behind a
// routing policy:
//
//	tokenflow-sim -replicas 4 -router session-affinity \
//	    -workload session-spikes -n 300 -duration 240
//
// -hetero lays out a heterogeneous pool ("GPU[:count[:memfrac]]" comma
// list) and -migrate enables cross-replica KV migration:
//
//	tokenflow-sim -hetero "H200:1:0.3,RTX-4090:3:0.75" -migrate \
//	    -router session-affinity -workload session-spikes -n 300 -duration 240
//
// -autoscale enables SLO-driven replica autoscaling between -min-replicas
// and -max-replicas, with -warmup seconds of scale-up latency and -prewarm
// shipping hot KV prefixes to warming replicas:
//
//	tokenflow-sim -autoscale queue-pressure -min-replicas 1 -max-replicas 4 \
//	    -warmup 8 -prewarm -router session-affinity \
//	    -workload session-spikes -n 300 -duration 240
//
// -autoscale slo-target drives the windowed P99 TTFT toward -slo-p99;
// -autoscale predictive pre-scales a warm-up ahead of the forecast
// arrival rate; -min-replicas 0 enables scale-to-zero with a
// -gateway-depth-bounded buffer that holds cold arrivals while the first
// replica warms:
//
//	tokenflow-sim -autoscale slo-target -slo-p99 2.5 -min-replicas 0 \
//	    -max-replicas 4 -warmup 8 -router session-affinity \
//	    -workload sessions -n 200 -duration 240
//
// -router indexed-session-affinity (or indexed-least-queue) routes against
// the event-published gateway prefix index instead of scanning live replica
// state; -index-delay, -index-drop, and -index-heartbeat model how stale
// that view is allowed to get:
//
//	tokenflow-sim -replicas 8 -router indexed-session-affinity \
//	    -index-delay 0.05 -index-heartbeat 0.25 \
//	    -workload session-spikes -n 300 -duration 240
//
// -topology selects the transfer-fabric interconnect (shared per-replica
// NICs contend; the default full mesh does not), -migration-policy cost
// declines migrations the wire would lose, and -host-cache lets evicted
// prefix pins reload from host memory instead of recomputing:
//
//	tokenflow-sim -replicas 4 -router session-affinity -migrate \
//	    -topology shared-nic -link-gbps 1 -migration-policy cost -host-cache \
//	    -workload session-spikes -n 300 -duration 240
//
// -chaos injects seeded-random faults on the virtual clock; -crash-at
// scripts replica crashes and -flap scripts interconnect link flaps, with
// recovery — retry/backoff re-routing, -redundancy pin mirrors, autoscaler
// backfill — fully simulated:
//
//	tokenflow-sim -replicas 4 -router session-affinity -host-cache \
//	    -crash-at 1:30 -redundancy 2 \
//	    -workload session-spikes -n 300 -duration 240
//
// -trace-out records the request lifecycle and writes Chrome trace_event
// JSON (open in Perfetto at ui.perfetto.dev), -series-out dumps per-tick
// telemetry series as CSV, and -obs-profile writes the simulator's
// self-profile in the BENCH_obs.json shape:
//
//	tokenflow-sim -replicas 3 -router session-affinity -migrate \
//	    -trace-out trace.json -series-out series.csv -obs-profile bench.json \
//	    -workload session-spikes -n 300 -duration 240
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/tokenflow"
)

// flagGroups sections the -help output: one group per subsystem instead of
// one flat alphabetical list.
var flagGroups = []struct {
	title string
	names []string
}{
	{"Deployment", []string{"system", "gpu", "model", "mem-fraction"}},
	{"Workload", []string{"workload", "n", "lambda", "duration", "spike-every",
		"prompt", "output", "rate", "seed"}},
	{"Cluster", []string{"replicas", "router", "hetero", "migrate", "migration-policy", "shards"}},
	{"Prefix index (gateway routing view)", []string{"prefix-index", "index-delay", "index-drop",
		"index-heartbeat", "index-staleness"}},
	{"Transfer fabric / KV movement", []string{"topology", "link-gbps", "switch-gbps", "host-cache",
		"host-cache-pages"}},
	{"Autoscaling", []string{"autoscale", "min-replicas", "max-replicas", "warmup", "prewarm",
		"slo-p99", "forecast-rate", "gateway-depth"}},
	{"Chaos / fault injection", []string{"chaos", "crash-at", "flap", "redundancy"}},
	{"Observability", []string{"trace-out", "series-out", "obs-profile"}},
}

// groupedUsage prints the flag sections of flagGroups, then any flag the
// groups forgot (so a new flag can never silently vanish from -help).
func groupedUsage() {
	out := flag.CommandLine.Output()
	fmt.Fprintf(out, "Usage: tokenflow-sim [flags]\n")
	seen := map[string]bool{}
	printFlag := func(f *flag.Flag) {
		name, usage := flag.UnquoteUsage(f)
		if name != "" {
			name = " " + name
		}
		fmt.Fprintf(out, "  -%s%s\n    \t%s (default %v)\n", f.Name, name, usage, f.DefValue)
	}
	for _, g := range flagGroups {
		fmt.Fprintf(out, "\n%s:\n", g.title)
		for _, name := range g.names {
			if f := flag.Lookup(name); f != nil {
				seen[name] = true
				printFlag(f)
			}
		}
	}
	first := true
	flag.VisitAll(func(f *flag.Flag) {
		if !seen[f.Name] {
			if first {
				fmt.Fprintf(out, "\nOther:\n")
				first = false
			}
			printFlag(f)
		}
	})
}

// parseCrashes parses a "replica:atSeconds" comma list into scripted crash
// faults, e.g. "1:30,2:45".
func parseCrashes(s string) ([]tokenflow.FaultSpec, error) {
	var out []tokenflow.FaultSpec
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) != 2 {
			return nil, fmt.Errorf("bad crash spec %q (want replica:atSeconds)", part)
		}
		rep, err := strconv.Atoi(fields[0])
		if err != nil || rep < 0 {
			return nil, fmt.Errorf("bad replica in crash spec %q", part)
		}
		at, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || at < 0 {
			return nil, fmt.Errorf("bad time in crash spec %q", part)
		}
		out = append(out, tokenflow.FaultSpec{Kind: "crash", Replica: rep, AtSeconds: at})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -crash-at spec %q", s)
	}
	return out, nil
}

// parseFlaps parses a "from-to:atSeconds:durationSeconds" comma list into
// scripted link-flap faults, e.g. "0-1:20:5".
func parseFlaps(s string) ([]tokenflow.FaultSpec, error) {
	var out []tokenflow.FaultSpec
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("bad flap spec %q (want from-to:atSeconds:durationSeconds)", part)
		}
		pair := strings.Split(fields[0], "-")
		if len(pair) != 2 {
			return nil, fmt.Errorf("bad link pair in flap spec %q", part)
		}
		from, err1 := strconv.Atoi(pair[0])
		to, err2 := strconv.Atoi(pair[1])
		if err1 != nil || err2 != nil || from < 0 || to < 0 {
			return nil, fmt.Errorf("bad link pair in flap spec %q", part)
		}
		at, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || at < 0 {
			return nil, fmt.Errorf("bad time in flap spec %q", part)
		}
		dur, err := strconv.ParseFloat(fields[2], 64)
		if err != nil || dur <= 0 {
			return nil, fmt.Errorf("bad duration in flap spec %q", part)
		}
		out = append(out, tokenflow.FaultSpec{
			Kind: "link-flap", From: from, To: to,
			AtSeconds: at, DurationSeconds: dur,
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -flap spec %q", s)
	}
	return out, nil
}

// parseHetero parses a "GPU[:count[:memfrac]]" comma list into replica
// specs, e.g. "H200:1:0.3,RTX-4090:3:0.75".
func parseHetero(s string) ([]tokenflow.ReplicaSpec, error) {
	var specs []tokenflow.ReplicaSpec
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) > 3 {
			return nil, fmt.Errorf("bad replica spec %q (want GPU[:count[:memfrac]])", part)
		}
		spec := tokenflow.ReplicaSpec{GPU: fields[0], Count: 1}
		if len(fields) > 1 {
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 1 {
				return nil, fmt.Errorf("bad replica count in %q", part)
			}
			spec.Count = n
		}
		if len(fields) > 2 {
			f, err := strconv.ParseFloat(fields[2], 64)
			if err != nil || f <= 0 || f > 1 {
				return nil, fmt.Errorf("bad mem fraction in %q", part)
			}
			spec.MemFraction = f
		}
		specs = append(specs, spec)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("empty -hetero spec %q", s)
	}
	return specs, nil
}

func main() {
	var (
		system   = flag.String("system", "tokenflow", "sglang | sglang-chunked | andes | tokenflow")
		gpuName  = flag.String("gpu", "H200", "RTX-4090 | A6000 | H200 | Ascend-910B")
		modelID  = flag.String("model", "Llama3-8B", "Llama3-8B | Qwen2-7B | Qwen2.5-7B | Qwen2.5-32B")
		memFrac  = flag.Float64("mem-fraction", 0.9, "device memory share for weights+KV")
		kind     = flag.String("workload", "burst", "burst | poisson | burstgpt | sessions | session-spikes")
		n        = flag.Int("n", 100, "burst size / session count")
		lambda   = flag.Float64("lambda", 2, "poisson arrival rate (req/s)")
		duration = flag.Float64("duration", 60, "arrival window for poisson/burstgpt/sessions (s)")
		spike    = flag.Float64("spike-every", 60, "session-spikes: seconds between session flash crowds")
		prompt   = flag.Int("prompt", 512, "mean prompt tokens")
		output   = flag.Int("output", 1024, "mean output tokens")
		rate     = flag.Float64("rate", 20, "client consumption rate (tok/s); 0 = instant")
		seed     = flag.Int64("seed", 1, "workload seed")
		replicas = flag.Int("replicas", 1, "engine replicas (cluster mode when > 1)")
		routerP  = flag.String("router", "round-robin", "round-robin | least-queue | least-kv | weighted-capacity | session-affinity | indexed-least-queue | indexed-session-affinity")
		hetero   = flag.String("hetero", "", `heterogeneous pool as "GPU[:count[:memfrac]],..." (cluster mode)`)
		migrate  = flag.Bool("migrate", false, "enable cross-replica KV migration over the interconnect")
		migPol   = flag.String("migration-policy", "always", "always | cost (cost declines migrations the wire would lose)")
		topology = flag.String("topology", "full-mesh", "interconnect layout: full-mesh | shared-nic")
		linkBW   = flag.Float64("link-gbps", 25, "interconnect link bandwidth (GB/s): per pair (full-mesh) or per NIC direction (shared-nic)")
		switchBW = flag.Float64("switch-gbps", 0, "shared-nic switch stage bandwidth (GB/s); 0 = non-blocking")
		hostCach = flag.Bool("host-cache", false, "host-tier prefix cache: evicted session pins reload over h2d instead of recomputing")
		hostPage = flag.Int("host-cache-pages", 0, "cap the host-tier prefix cache at this many mirrored pages (0 = unbounded)")
		shards   = flag.Int("shards", 0, "partition replicas across this many parallel worker goroutines (0/1 = single-threaded; results are identical either way)")
		pfxIndex = flag.Bool("prefix-index", false, "publish KV lifecycle events into the gateway prefix index (implied by the indexed routers and by any -index-* flag)")
		idxDelay = flag.Float64("index-delay", 0, "prefix-index event propagation delay (s); 0 = synchronous")
		idxDrop  = flag.Float64("index-drop", 0, "prefix-index KV event drop probability in [0,1)")
		idxHeart = flag.Float64("index-heartbeat", 0, "prefix-index load-digest heartbeat period (s); 0 = per-change load stream")
		idxStale = flag.Float64("index-staleness", 0, "prefix-index digest staleness bound (s) before routing falls back; 0 = derived from heartbeat+delay")
		scaler   = flag.String("autoscale", "", "autoscaling policy: queue-pressure | kv-utilization | slo-target | predictive (empty = static pool)")
		minReps  = flag.Int("min-replicas", 1, "autoscaling lower bound on in-service replicas; 0 enables scale-to-zero with the gateway queue")
		maxReps  = flag.Int("max-replicas", 0, "autoscaling upper bound (default: the replica layout size)")
		warmup   = flag.Float64("warmup", 8, "autoscaling scale-up warm-up latency (s); 0 = instant")
		prewarm  = flag.Bool("prewarm", false, "pre-warm scaling-up replicas with hot KV prefixes over the interconnect")
		sloP99   = flag.Float64("slo-p99", 2, "slo-target policy: windowed P99 TTFT goal (s)")
		fcRate   = flag.Float64("forecast-rate", 0, "predictive policy: arrival rate (req/s) one replica absorbs (0 = default 0.6)")
		gwDepth  = flag.Int("gateway-depth", 0, "scale-to-zero gateway buffer bound (0 = default 512; negative = zero capacity, cold arrivals shed)")
		chaosN   = flag.Int("chaos", 0, "inject this many seeded-random faults (crashes, brownouts, link flaps) over the workload window, keyed by -seed")
		crashAt  = flag.String("crash-at", "", "scripted replica crashes as `replica:atSeconds,...` (e.g. \"1:30,2:45\")")
		flapAt   = flag.String("flap", "", "scripted link flaps as `from-to:atSeconds:durationSeconds,...` (e.g. \"0-1:20:5\")")
		redund   = flag.Int("redundancy", 0, "pin-redundancy factor K: keep host mirrors of pinned prefixes on K-1 backup replicas, re-pinned after a crash (0/1 = off)")
		traceOut = flag.String("trace-out", "", "record lifecycle events and write a Chrome trace_event JSON `file` (open in Perfetto); a .jsonl suffix writes the raw event log instead")
		seriesOu = flag.String("series-out", "", "record per-tick telemetry series and write them as CSV to `file` (cluster mode)")
		obsProf  = flag.String("obs-profile", "", "self-profile the simulator's phases and write BENCH_obs.json to `file`")
	)
	flag.Usage = groupedUsage
	flag.Parse()

	var w tokenflow.Workload
	switch *kind {
	case "burst":
		w = tokenflow.BurstWorkload(*n, *prompt, *output, *rate, *seed)
	case "poisson":
		w = tokenflow.PoissonWorkload(*lambda, *duration, *prompt, *output, *rate, *seed)
	case "burstgpt":
		w = tokenflow.BurstGPTWorkload(*duration, *lambda, *rate, *seed)
	case "sessions":
		w = tokenflow.SessionWorkload(*n, *duration, *rate, *seed)
	case "session-spikes":
		w = tokenflow.SessionSpikesWorkload(*n, *duration, *spike, *rate, *seed)
	default:
		log.Fatalf("unknown workload kind %q", *kind)
	}

	cfg := tokenflow.Config{
		System:               tokenflow.System(*system),
		GPU:                  *gpuName,
		Model:                *modelID,
		MemFraction:          *memFrac,
		HostPrefixCache:      *hostCach,
		HostPrefixCachePages: *hostPage,
		Obs: tokenflow.ObsSpec{
			Events:  *traceOut != "",
			Series:  *seriesOu != "",
			Profile: *obsProf != "",
		},
	}
	if cfg.Obs.Series && cfg.SampleEverySeconds == 0 {
		// Series ride the sampling loop; give it a tick when the user
		// asked for series but never enabled sampling.
		cfg.SampleEverySeconds = 0.25
	}

	var res *tokenflow.Result
	var ocap *tokenflow.ObsCapture
	// Any -index-* knob implies -prefix-index; the indexed routers get the
	// degenerate spec automatically even without it.
	wantIndex := *pfxIndex || *idxDelay > 0 || *idxDrop > 0 || *idxHeart > 0 || *idxStale > 0
	// -host-cache routes through cluster mode even for one replica (a
	// 1-replica round-robin cluster reproduces Run exactly) so the host
	// prefix cache's reload/fallback stats are reported.
	wantChaos := *chaosN > 0 || *crashAt != "" || *flapAt != "" || *redund > 1
	if *replicas > 1 || *hetero != "" || *scaler != "" || *hostCach || wantIndex || wantChaos {
		ccfg := tokenflow.ClusterConfig{
			Config:          cfg,
			Replicas:        *replicas,
			Router:          tokenflow.RouterPolicy(*routerP),
			Migrate:         *migrate,
			MigrationPolicy: tokenflow.MigrationPolicy(*migPol),
			Shards:          *shards,
			Topology: &tokenflow.TopologySpec{
				Kind:       tokenflow.TopologyKind(*topology),
				LinkGBps:   *linkBW,
				SwitchGBps: *switchBW,
			},
		}
		if *hetero != "" {
			specs, err := parseHetero(*hetero)
			if err != nil {
				log.Fatal(err)
			}
			ccfg.ReplicaSpecs = specs
		}
		if wantIndex {
			ccfg.PrefixIndex = &tokenflow.PrefixIndexSpec{
				PropagationDelaySeconds: *idxDelay,
				DropRate:                *idxDrop,
				HeartbeatEverySeconds:   *idxHeart,
				MaxStalenessSeconds:     *idxStale,
				Seed:                    *seed,
			}
		}
		if wantChaos {
			cs := &tokenflow.ChaosSpec{
				RandomFaults:   *chaosN,
				Seed:           *seed,
				HorizonSeconds: *duration,
				Redundancy:     *redund,
			}
			if *crashAt != "" {
				faults, err := parseCrashes(*crashAt)
				if err != nil {
					log.Fatal(err)
				}
				cs.Faults = append(cs.Faults, faults...)
			}
			if *flapAt != "" {
				faults, err := parseFlaps(*flapAt)
				if err != nil {
					log.Fatal(err)
				}
				cs.Faults = append(cs.Faults, faults...)
			}
			ccfg.Chaos = cs
		}
		if *scaler != "" {
			ws := *warmup
			if ws == 0 {
				// The flag default is 8, so an explicit 0 means "instant" —
				// map it onto the spec's negative-means-instant convention
				// (its own zero value selects the default).
				ws = -1
			}
			ccfg.Autoscale = &tokenflow.AutoscaleSpec{
				Policy:        tokenflow.AutoscalePolicy(*scaler),
				MinReplicas:   *minReps,
				MaxReplicas:   *maxReps,
				WarmupSeconds: ws,
				Prewarm:       *prewarm,
				ScaleToZero:   *minReps == 0,
				GatewayDepth:  *gwDepth,
				TargetP99TTFT: time.Duration(*sloP99 * float64(time.Second)),
			}
			if *fcRate > 0 {
				ccfg.Autoscale.Forecast = &tokenflow.ForecastSpec{RatePerReplica: *fcRate}
			}
		}
		cres, err := tokenflow.RunCluster(ccfg, w)
		if err != nil {
			log.Fatal(err)
		}
		res = cres.Cluster
		ocap = cres.Obs
		fmt.Printf("replicas            %d (router: %s)\n", len(cres.Replicas), cres.Router)
		fmt.Printf("load imbalance      %.2fx peak/mean\n", cres.Imbalance)
		fmt.Printf("prefix-cache hits   %d (%d tokens of prefill skipped)\n",
			cres.PrefixHits, cres.PrefixHitTokens)
		fmt.Printf("prefix residency    %d pages pinned at end, %d pressure evictions\n",
			cres.PinnedPrefixPages, cres.PrefixEvictions)
		if *migrate {
			fmt.Printf("KV migrations       %d (%d tokens shipped, %d drops, %d declined by cost model)\n",
				cres.Migrations, cres.MigratedTokens, cres.MigrationDrops, cres.MigrationsDeclined)
		}
		if *hostCach {
			fmt.Printf("host prefix cache   %d reloads (%d tokens), %d recompute fallbacks\n",
				cres.HostReloads, cres.HostReloadTokens, cres.HostReloadFallbacks)
		}
		if wantChaos {
			fmt.Printf("chaos               %d crashes, %d brownouts, %d link flaps injected\n",
				cres.Crashes, cres.Brownouts, cres.LinkFlaps)
			fmt.Printf("chaos recovery      %d retries, %d permanent failures, %d backfills, %d transfers aborted\n",
				cres.Retries, cres.RetryFailures, cres.Backfills, cres.MigrationsAborted)
			if *redund > 1 {
				fmt.Printf("pin redundancy      K=%d: %d replication transfers, %.1f MB over the fabric\n",
					*redund, cres.Replications, float64(cres.ReplicatedBytes)/1e6)
			}
		}
		if st := cres.PrefixIndex; st != nil {
			fmt.Printf("prefix index        %d events published (%d dropped, %d still in flight), %d heartbeats\n",
				st.Published, st.Dropped, st.Pending, st.Heartbeats)
			fmt.Printf("indexed routing     %d affinity hits, %d misses, %d stale / %d headroom / %d overload fallbacks\n",
				st.AffinityHits, st.AffinityMisses, st.StaleFallbacks, st.HeadroomFallbacks, st.OverloadFallbacks)
		}
		fmt.Printf("transfer fabric     %s, %.1f GB/s links\n", *topology, *linkBW)
		for _, cs := range cres.Transfers {
			if cs.Transfers == 0 {
				continue
			}
			fmt.Printf("  %-8s %6d transfers, %8.1f MB, %7.3fs wire-busy\n",
				cs.Class, cs.Transfers, float64(cs.Bytes)/1e6, cs.BusySeconds)
		}
		if *scaler != "" {
			fmt.Printf("autoscaling         %s: %d scale-ups, %d scale-downs, %d warm-up-stalled arrivals\n",
				*scaler, cres.ScaleUps, cres.ScaleDowns, cres.WarmupStalls)
			fmt.Printf("GPU-seconds         %.0f (fixed %d-replica pool would burn %.0f)\n",
				cres.GPUSeconds, len(cres.Replicas),
				float64(len(cres.Replicas))*res.MakespanSec)
			if *prewarm {
				fmt.Printf("KV pre-warm         %d pins shipped (%d tokens)\n",
					cres.Prewarms, cres.PrewarmedTokens)
			}
			if *minReps == 0 {
				fmt.Printf("scale-to-zero       %d arrivals buffered in the gateway, %d shed\n",
					cres.GatewayBuffered, cres.GatewayShed)
			}
			if cres.ForecastSamples > 0 {
				fmt.Printf("forecast            MAE %.2f req/s over %d scored forecasts\n",
					cres.ForecastError, cres.ForecastSamples)
			}
			for _, ev := range cres.ScaleEvents {
				fmt.Printf("  t=%7.2fs  replica %d  %s\n", ev.AtSeconds, ev.Replica, ev.Kind)
			}
		}
		for _, rr := range cres.Replicas {
			fmt.Printf("  replica %d (%s)  %d routed, %d finished, p99 TTFT %.2fs, %d pages pinned, %s\n",
				rr.ID, rr.GPU, rr.Routed, rr.Result.Finished, rr.Result.P99TTFT.Seconds(),
				rr.PinnedPrefixPages, rr.State)
		}
	} else {
		var err error
		res, err = tokenflow.Run(cfg, w)
		if err != nil {
			log.Fatal(err)
		}
		ocap = res.Obs
	}

	fmt.Printf("system              %s\n", res.System)
	fmt.Printf("requests            %d finished / %d total (timed out: %v)\n", res.Finished, res.Total, res.TimedOut)
	fmt.Printf("makespan            %.2fs\n", res.MakespanSec)
	fmt.Printf("throughput          %.1f tok/s\n", res.Throughput)
	fmt.Printf("effective thpt      %.1f tok/s\n", res.EffectiveThroughput)
	fmt.Printf("QoS                 %.1f\n", res.QoS)
	fmt.Printf("TTFT mean/p50/p99   %.2fs / %.2fs / %.2fs\n",
		res.MeanTTFT.Seconds(), res.P50TTFT.Seconds(), res.P99TTFT.Seconds())
	fmt.Printf("total rebuffer      %.2fs across %d requests\n", res.TotalRebuffer.Seconds(), res.Total)
	fmt.Printf("preemptions         %d\n", res.Preemptions)

	writeObs(ocap, *traceOut, *seriesOu, *obsProf)
}

// writeObs writes the observability exports the flags requested. All the
// writers are nil-safe, so an export requested on a path that recorded
// nothing (series on a single-device run) writes an empty document rather
// than failing.
func writeObs(ocap *tokenflow.ObsCapture, traceOut, seriesOut, profOut string) {
	write := func(path string, fn func(io.Writer) error) {
		if path == "" {
			return
		}
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := fn(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}
	if traceOut != "" {
		fmt.Printf("events recorded     %d\n", ocap.EventCount())
	}
	if strings.HasSuffix(traceOut, ".jsonl") {
		write(traceOut, ocap.WriteEventsJSONL)
	} else {
		write(traceOut, ocap.WriteTraceJSON)
	}
	write(seriesOut, ocap.WriteSeriesCSV)
	write(profOut, ocap.WriteProfileJSON)
}
