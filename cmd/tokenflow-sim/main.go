// Command tokenflow-sim runs one simulated deployment against one
// generated workload and prints the serving report.
//
//	tokenflow-sim -system tokenflow -gpu H200 -model Llama3-8B \
//	    -workload burst -n 300 -prompt 512 -output 4096 -rate 20
//
// With -replicas > 1 it simulates a multi-replica cluster behind a
// routing policy:
//
//	tokenflow-sim -replicas 4 -router session-affinity \
//	    -workload session-spikes -n 300 -duration 240
//
// -hetero lays out a heterogeneous pool ("GPU[:count[:memfrac]]" comma
// list) and -migrate enables cross-replica KV migration:
//
//	tokenflow-sim -hetero "H200:1:0.3,RTX-4090:3:0.75" -migrate \
//	    -router session-affinity -workload session-spikes -n 300 -duration 240
//
// -autoscale enables SLO-driven replica autoscaling between -min-replicas
// and -max-replicas, with -warmup seconds of scale-up latency and -prewarm
// shipping hot KV prefixes to warming replicas:
//
//	tokenflow-sim -autoscale queue-pressure -min-replicas 1 -max-replicas 4 \
//	    -warmup 8 -prewarm -router session-affinity \
//	    -workload session-spikes -n 300 -duration 240
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"repro/tokenflow"
)

// parseHetero parses a "GPU[:count[:memfrac]]" comma list into replica
// specs, e.g. "H200:1:0.3,RTX-4090:3:0.75".
func parseHetero(s string) ([]tokenflow.ReplicaSpec, error) {
	var specs []tokenflow.ReplicaSpec
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) > 3 {
			return nil, fmt.Errorf("bad replica spec %q (want GPU[:count[:memfrac]])", part)
		}
		spec := tokenflow.ReplicaSpec{GPU: fields[0], Count: 1}
		if len(fields) > 1 {
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 1 {
				return nil, fmt.Errorf("bad replica count in %q", part)
			}
			spec.Count = n
		}
		if len(fields) > 2 {
			f, err := strconv.ParseFloat(fields[2], 64)
			if err != nil || f <= 0 || f > 1 {
				return nil, fmt.Errorf("bad mem fraction in %q", part)
			}
			spec.MemFraction = f
		}
		specs = append(specs, spec)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("empty -hetero spec %q", s)
	}
	return specs, nil
}

func main() {
	var (
		system   = flag.String("system", "tokenflow", "sglang | sglang-chunked | andes | tokenflow")
		gpuName  = flag.String("gpu", "H200", "RTX-4090 | A6000 | H200 | Ascend-910B")
		modelID  = flag.String("model", "Llama3-8B", "Llama3-8B | Qwen2-7B | Qwen2.5-7B | Qwen2.5-32B")
		memFrac  = flag.Float64("mem-fraction", 0.9, "device memory share for weights+KV")
		kind     = flag.String("workload", "burst", "burst | poisson | burstgpt | sessions | session-spikes")
		n        = flag.Int("n", 100, "burst size / session count")
		lambda   = flag.Float64("lambda", 2, "poisson arrival rate (req/s)")
		duration = flag.Float64("duration", 60, "arrival window for poisson/burstgpt/sessions (s)")
		spike    = flag.Float64("spike-every", 60, "session-spikes: seconds between session flash crowds")
		prompt   = flag.Int("prompt", 512, "mean prompt tokens")
		output   = flag.Int("output", 1024, "mean output tokens")
		rate     = flag.Float64("rate", 20, "client consumption rate (tok/s); 0 = instant")
		seed     = flag.Int64("seed", 1, "workload seed")
		replicas = flag.Int("replicas", 1, "engine replicas (cluster mode when > 1)")
		routerP  = flag.String("router", "round-robin", "round-robin | least-queue | least-kv | weighted-capacity | session-affinity")
		hetero   = flag.String("hetero", "", `heterogeneous pool as "GPU[:count[:memfrac]],..." (cluster mode)`)
		migrate  = flag.Bool("migrate", false, "enable cross-replica KV migration over the interconnect")
		scaler   = flag.String("autoscale", "", "autoscaling policy: queue-pressure | kv-utilization (empty = static pool)")
		minReps  = flag.Int("min-replicas", 1, "autoscaling lower bound on in-service replicas")
		maxReps  = flag.Int("max-replicas", 0, "autoscaling upper bound (default: the replica layout size)")
		warmup   = flag.Float64("warmup", 8, "autoscaling scale-up warm-up latency (s); 0 = instant")
		prewarm  = flag.Bool("prewarm", false, "pre-warm scaling-up replicas with hot KV prefixes over the interconnect")
	)
	flag.Parse()

	var w tokenflow.Workload
	switch *kind {
	case "burst":
		w = tokenflow.BurstWorkload(*n, *prompt, *output, *rate, *seed)
	case "poisson":
		w = tokenflow.PoissonWorkload(*lambda, *duration, *prompt, *output, *rate, *seed)
	case "burstgpt":
		w = tokenflow.BurstGPTWorkload(*duration, *lambda, *rate, *seed)
	case "sessions":
		w = tokenflow.SessionWorkload(*n, *duration, *rate, *seed)
	case "session-spikes":
		w = tokenflow.SessionSpikesWorkload(*n, *duration, *spike, *rate, *seed)
	default:
		log.Fatalf("unknown workload kind %q", *kind)
	}

	cfg := tokenflow.Config{
		System:      tokenflow.System(*system),
		GPU:         *gpuName,
		Model:       *modelID,
		MemFraction: *memFrac,
	}

	var res *tokenflow.Result
	if *replicas > 1 || *hetero != "" || *scaler != "" {
		ccfg := tokenflow.ClusterConfig{
			Config:   cfg,
			Replicas: *replicas,
			Router:   tokenflow.RouterPolicy(*routerP),
			Migrate:  *migrate,
		}
		if *hetero != "" {
			specs, err := parseHetero(*hetero)
			if err != nil {
				log.Fatal(err)
			}
			ccfg.ReplicaSpecs = specs
		}
		if *scaler != "" {
			ws := *warmup
			if ws == 0 {
				// The flag default is 8, so an explicit 0 means "instant" —
				// map it onto the spec's negative-means-instant convention
				// (its own zero value selects the default).
				ws = -1
			}
			ccfg.Autoscale = &tokenflow.AutoscaleSpec{
				Policy:        tokenflow.AutoscalePolicy(*scaler),
				MinReplicas:   *minReps,
				MaxReplicas:   *maxReps,
				WarmupSeconds: ws,
				Prewarm:       *prewarm,
			}
		}
		cres, err := tokenflow.RunCluster(ccfg, w)
		if err != nil {
			log.Fatal(err)
		}
		res = cres.Cluster
		fmt.Printf("replicas            %d (router: %s)\n", len(cres.Replicas), cres.Router)
		fmt.Printf("load imbalance      %.2fx peak/mean\n", cres.Imbalance)
		fmt.Printf("prefix-cache hits   %d (%d tokens of prefill skipped)\n",
			cres.PrefixHits, cres.PrefixHitTokens)
		fmt.Printf("prefix residency    %d pages pinned at end, %d pressure evictions\n",
			cres.PinnedPrefixPages, cres.PrefixEvictions)
		if *migrate {
			fmt.Printf("KV migrations       %d (%d tokens shipped, %d drops)\n",
				cres.Migrations, cres.MigratedTokens, cres.MigrationDrops)
		}
		if *scaler != "" {
			fmt.Printf("autoscaling         %s: %d scale-ups, %d scale-downs, %d warm-up-stalled arrivals\n",
				*scaler, cres.ScaleUps, cres.ScaleDowns, cres.WarmupStalls)
			fmt.Printf("GPU-seconds         %.0f (fixed %d-replica pool would burn %.0f)\n",
				cres.GPUSeconds, len(cres.Replicas),
				float64(len(cres.Replicas))*res.MakespanSec)
			if *prewarm {
				fmt.Printf("KV pre-warm         %d pins shipped (%d tokens)\n",
					cres.Prewarms, cres.PrewarmedTokens)
			}
			for _, ev := range cres.ScaleEvents {
				fmt.Printf("  t=%7.2fs  replica %d  %s\n", ev.AtSeconds, ev.Replica, ev.Kind)
			}
		}
		for _, rr := range cres.Replicas {
			fmt.Printf("  replica %d (%s)  %d routed, %d finished, p99 TTFT %.2fs, %d pages pinned, %s\n",
				rr.ID, rr.GPU, rr.Routed, rr.Result.Finished, rr.Result.P99TTFT.Seconds(),
				rr.PinnedPrefixPages, rr.State)
		}
	} else {
		var err error
		res, err = tokenflow.Run(cfg, w)
		if err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("system              %s\n", res.System)
	fmt.Printf("requests            %d finished / %d total (timed out: %v)\n", res.Finished, res.Total, res.TimedOut)
	fmt.Printf("makespan            %.2fs\n", res.MakespanSec)
	fmt.Printf("throughput          %.1f tok/s\n", res.Throughput)
	fmt.Printf("effective thpt      %.1f tok/s\n", res.EffectiveThroughput)
	fmt.Printf("QoS                 %.1f\n", res.QoS)
	fmt.Printf("TTFT mean/p50/p99   %.2fs / %.2fs / %.2fs\n",
		res.MeanTTFT.Seconds(), res.P50TTFT.Seconds(), res.P99TTFT.Seconds())
	fmt.Printf("total rebuffer      %.2fs across %d requests\n", res.TotalRebuffer.Seconds(), res.Total)
	fmt.Printf("preemptions         %d\n", res.Preemptions)
}
