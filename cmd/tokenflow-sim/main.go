// Command tokenflow-sim runs one simulated deployment against one
// generated workload and prints the serving report.
//
//	tokenflow-sim -system tokenflow -gpu H200 -model Llama3-8B \
//	    -workload burst -n 300 -prompt 512 -output 4096 -rate 20
//
// With -replicas > 1 it simulates a multi-replica cluster behind a
// routing policy:
//
//	tokenflow-sim -replicas 4 -router session-affinity \
//	    -workload session-spikes -n 300 -duration 240
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/tokenflow"
)

func main() {
	var (
		system   = flag.String("system", "tokenflow", "sglang | sglang-chunked | andes | tokenflow")
		gpuName  = flag.String("gpu", "H200", "RTX-4090 | A6000 | H200 | Ascend-910B")
		modelID  = flag.String("model", "Llama3-8B", "Llama3-8B | Qwen2-7B | Qwen2.5-7B | Qwen2.5-32B")
		memFrac  = flag.Float64("mem-fraction", 0.9, "device memory share for weights+KV")
		kind     = flag.String("workload", "burst", "burst | poisson | burstgpt | sessions | session-spikes")
		n        = flag.Int("n", 100, "burst size / session count")
		lambda   = flag.Float64("lambda", 2, "poisson arrival rate (req/s)")
		duration = flag.Float64("duration", 60, "arrival window for poisson/burstgpt/sessions (s)")
		spike    = flag.Float64("spike-every", 60, "session-spikes: seconds between session flash crowds")
		prompt   = flag.Int("prompt", 512, "mean prompt tokens")
		output   = flag.Int("output", 1024, "mean output tokens")
		rate     = flag.Float64("rate", 20, "client consumption rate (tok/s); 0 = instant")
		seed     = flag.Int64("seed", 1, "workload seed")
		replicas = flag.Int("replicas", 1, "engine replicas (cluster mode when > 1)")
		routerP  = flag.String("router", "round-robin", "round-robin | least-queue | least-kv | session-affinity")
	)
	flag.Parse()

	var w tokenflow.Workload
	switch *kind {
	case "burst":
		w = tokenflow.BurstWorkload(*n, *prompt, *output, *rate, *seed)
	case "poisson":
		w = tokenflow.PoissonWorkload(*lambda, *duration, *prompt, *output, *rate, *seed)
	case "burstgpt":
		w = tokenflow.BurstGPTWorkload(*duration, *lambda, *rate, *seed)
	case "sessions":
		w = tokenflow.SessionWorkload(*n, *duration, *rate, *seed)
	case "session-spikes":
		w = tokenflow.SessionSpikesWorkload(*n, *duration, *spike, *rate, *seed)
	default:
		log.Fatalf("unknown workload kind %q", *kind)
	}

	cfg := tokenflow.Config{
		System:      tokenflow.System(*system),
		GPU:         *gpuName,
		Model:       *modelID,
		MemFraction: *memFrac,
	}

	var res *tokenflow.Result
	if *replicas > 1 {
		cres, err := tokenflow.RunCluster(tokenflow.ClusterConfig{
			Config:   cfg,
			Replicas: *replicas,
			Router:   tokenflow.RouterPolicy(*routerP),
		}, w)
		if err != nil {
			log.Fatal(err)
		}
		res = cres.Cluster
		fmt.Printf("replicas            %d (router: %s)\n", *replicas, cres.Router)
		fmt.Printf("load imbalance      %.2fx peak/mean\n", cres.Imbalance)
		fmt.Printf("prefix-cache hits   %d (%d tokens of prefill skipped)\n",
			cres.PrefixHits, cres.PrefixHitTokens)
		for _, rr := range cres.Replicas {
			fmt.Printf("  replica %d         %d routed, %d finished, p99 TTFT %.2fs\n",
				rr.ID, rr.Routed, rr.Result.Finished, rr.Result.P99TTFT.Seconds())
		}
	} else {
		var err error
		res, err = tokenflow.Run(cfg, w)
		if err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("system              %s\n", res.System)
	fmt.Printf("requests            %d finished / %d total (timed out: %v)\n", res.Finished, res.Total, res.TimedOut)
	fmt.Printf("makespan            %.2fs\n", res.MakespanSec)
	fmt.Printf("throughput          %.1f tok/s\n", res.Throughput)
	fmt.Printf("effective thpt      %.1f tok/s\n", res.EffectiveThroughput)
	fmt.Printf("QoS                 %.1f\n", res.QoS)
	fmt.Printf("TTFT mean/p50/p99   %.2fs / %.2fs / %.2fs\n",
		res.MeanTTFT.Seconds(), res.P50TTFT.Seconds(), res.P99TTFT.Seconds())
	fmt.Printf("total rebuffer      %.2fs across %d requests\n", res.TotalRebuffer.Seconds(), res.Total)
	fmt.Printf("preemptions         %d\n", res.Preemptions)
}
