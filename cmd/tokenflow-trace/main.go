// Command tokenflow-trace analyzes a flight-recorder events.jsonl export
// offline: it re-derives every request's causal span (the same exact
// phase accounting the live attribution layer streams) and answers where
// latency came from without re-running the simulation.
//
// Usage:
//
//	tokenflow-trace summary <run>         # phase breakdown, exact quantiles
//	tokenflow-trace slowest [-k N] <run>  # worst-E2E requests as waterfalls
//	tokenflow-trace diff <runA> <runB>    # phase-delta report across runs
//
// <run> is an events.jsonl file or a directory containing one (an
// ObsSpec.Out directory works directly). Because the full event stream
// is on disk, quantiles here are exact order statistics, not the
// bounded-error sketch estimates of the in-run report.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/attribution"
)

// metric rows of the offline tables: the six phases plus the measured
// latencies, mirroring the in-run report's layout.
const (
	metricTTFT = int(attribution.NumPhases)
	metricE2E  = int(attribution.NumPhases) + 1
	numMetrics = int(attribution.NumPhases) + 2
)

func metricName(m int) string {
	switch m {
	case metricTTFT:
		return "ttft"
	case metricE2E:
		return "e2e"
	default:
		return attribution.Phase(m).String()
	}
}

func metricOf(s *attribution.Span, m int) time.Duration {
	switch m {
	case metricTTFT:
		return s.TTFT()
	case metricE2E:
		return s.E2E()
	default:
		return s.Phase(attribution.Phase(m))
	}
}

// loadSpans reads an events.jsonl export (or a directory holding one)
// and derives the completed-request spans.
func loadSpans(path string) ([]attribution.Span, string, error) {
	if st, err := os.Stat(path); err == nil && st.IsDir() {
		path = filepath.Join(path, "events.jsonl")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, path, err
	}
	defer f.Close()
	events, err := obs.ReadEventsJSONL(f)
	if err != nil {
		return nil, path, fmt.Errorf("%s: %w", path, err)
	}
	return attribution.Derive(events), path, nil
}

// dist is one metric's exact distribution over a span set.
type dist struct {
	sorted []time.Duration
	total  time.Duration
}

func distOf(spans []attribution.Span, m int) dist {
	d := dist{sorted: make([]time.Duration, len(spans))}
	for i := range spans {
		v := metricOf(&spans[i], m)
		d.sorted[i] = v
		d.total += v
	}
	sort.Slice(d.sorted, func(i, j int) bool { return d.sorted[i] < d.sorted[j] })
	return d
}

func (d dist) mean() time.Duration {
	if len(d.sorted) == 0 {
		return 0
	}
	return d.total / time.Duration(len(d.sorted))
}

// quantile is the exact ceil(q·n)-th smallest observation.
func (d dist) quantile(q float64) time.Duration {
	if len(d.sorted) == 0 {
		return 0
	}
	rank := int(q * float64(len(d.sorted)))
	if float64(rank) < q*float64(len(d.sorted)) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > len(d.sorted) {
		rank = len(d.sorted)
	}
	return d.sorted[rank-1]
}

func (d dist) max() time.Duration {
	if len(d.sorted) == 0 {
		return 0
	}
	return d.sorted[len(d.sorted)-1]
}

// fmtDur matches the waterfall's formatting: millisecond precision.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
	}
}

func header(path string, spans []attribution.Span) string {
	var byClass [attribution.NumClasses]int
	for i := range spans {
		byClass[spans[i].Class]++
	}
	s := fmt.Sprintf("%s — %d completed requests (", path, len(spans))
	for c := attribution.Class(0); c < attribution.NumClasses; c++ {
		if c > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s %d", c, byClass[c])
	}
	return s + ")"
}

func runSummary(path string) error {
	spans, path, err := loadSpans(path)
	if err != nil {
		return err
	}
	fmt.Println(header(path, spans))
	if len(spans) == 0 {
		return nil
	}
	e2eTotal := distOf(spans, metricE2E).total
	fmt.Printf("\n%-9s %10s %10s %10s %10s %10s %7s\n",
		"phase", "mean", "p50", "p90", "p99", "max", "share")
	for m := 0; m < numMetrics; m++ {
		d := distOf(spans, m)
		row := fmt.Sprintf("%-9s %10s %10s %10s %10s %10s",
			metricName(m), fmtDur(d.mean()), fmtDur(d.quantile(0.50)),
			fmtDur(d.quantile(0.90)), fmtDur(d.quantile(0.99)), fmtDur(d.max()))
		if m < int(attribution.NumPhases) && e2eTotal > 0 {
			row += fmt.Sprintf(" %6.1f%%", 100*float64(d.total)/float64(e2eTotal))
		}
		fmt.Println(row)
	}
	return nil
}

func runSlowest(path string, k int) error {
	spans, path, err := loadSpans(path)
	if err != nil {
		return err
	}
	fmt.Println(header(path, spans))
	sort.Slice(spans, func(i, j int) bool {
		if a, b := spans[i].E2E(), spans[j].E2E(); a != b {
			return a > b
		}
		return spans[i].Request < spans[j].Request
	})
	if k > len(spans) {
		k = len(spans)
	}
	for i := 0; i < k; i++ {
		fmt.Println()
		fmt.Print(attribution.Waterfall(spans[i], 48))
	}
	return nil
}

func runDiff(pathA, pathB string) error {
	spansA, pathA, err := loadSpans(pathA)
	if err != nil {
		return err
	}
	spansB, pathB, err := loadSpans(pathB)
	if err != nil {
		return err
	}
	fmt.Println("A: " + header(pathA, spansA))
	fmt.Println("B: " + header(pathB, spansB))
	if len(spansA) == 0 || len(spansB) == 0 {
		return fmt.Errorf("nothing to diff: one run derived no spans")
	}
	fmt.Printf("\n%-9s %10s %10s %9s   %10s %10s %9s\n",
		"phase", "mean A", "mean B", "Δmean", "p99 A", "p99 B", "Δp99")
	for m := 0; m < numMetrics; m++ {
		da, db := distOf(spansA, m), distOf(spansB, m)
		fmt.Printf("%-9s %10s %10s %9s   %10s %10s %9s\n",
			metricName(m),
			fmtDur(da.mean()), fmtDur(db.mean()), delta(da.mean(), db.mean()),
			fmtDur(da.quantile(0.99)), fmtDur(db.quantile(0.99)),
			delta(da.quantile(0.99), db.quantile(0.99)))
	}
	return nil
}

// delta renders B relative to A as a signed percentage.
func delta(a, b time.Duration) string {
	switch {
	case a == b:
		return "="
	case a == 0:
		return "+inf"
	default:
		return fmt.Sprintf("%+.1f%%", 100*float64(b-a)/float64(a))
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  tokenflow-trace summary <events.jsonl | dir>
  tokenflow-trace slowest [-k N] <events.jsonl | dir>
  tokenflow-trace diff <runA> <runB>
`)
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch cmd := os.Args[1]; cmd {
	case "summary":
		if len(os.Args) != 3 {
			usage()
		}
		err = runSummary(os.Args[2])
	case "slowest":
		fs := flag.NewFlagSet("slowest", flag.ExitOnError)
		k := fs.Int("k", 5, "number of worst-E2E requests to render")
		fs.Parse(os.Args[2:])
		if fs.NArg() != 1 || *k < 1 {
			usage()
		}
		err = runSlowest(fs.Arg(0), *k)
	case "diff":
		if len(os.Args) != 4 {
			usage()
		}
		err = runDiff(os.Args[2], os.Args[3])
	default:
		fmt.Fprintf(os.Stderr, "unknown subcommand %q\n", cmd)
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tokenflow-trace: %v\n", err)
		os.Exit(1)
	}
}
