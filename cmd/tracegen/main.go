// Command tracegen emits generated workload traces as CSV
// (arrival_s,prompt_tokens,output_tokens,rate_tok_s,session,turn) for
// external tooling.
//
//	tracegen -kind burstgpt -duration 300 -lambda 2 > trace.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/simclock"
	"repro/internal/trace"
)

func main() {
	var (
		kind     = flag.String("kind", "burstgpt", "burst | poisson | burstgpt | industrial | sessions")
		n        = flag.Int("n", 100, "burst size")
		lambda   = flag.Float64("lambda", 2, "arrival rate (req/s)")
		duration = flag.Float64("duration", 60, "trace duration (s)")
		rate     = flag.Float64("rate", 20, "client consumption rate (tok/s)")
		seed     = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()

	lengths := trace.ShareGPTLengths()
	rates := trace.FixedRate(*rate)
	var w trace.Workload
	switch *kind {
	case "burst":
		w = trace.Burst("burst", *n, 0, lengths, rates, *seed)
	case "poisson":
		w = trace.Poisson("poisson", *lambda, simclock.FromSeconds(*duration), lengths, rates, *seed)
	case "burstgpt":
		w = trace.BurstGPT("burstgpt", trace.BurstGPTConfig{
			Duration: simclock.FromSeconds(*duration),
			BaseRate: *lambda,
			Lengths:  lengths,
			Rates:    rates,
			Seed:     *seed,
		})
	case "industrial":
		w = trace.Industrial("industrial", simclock.FromSeconds(*duration), *lambda, rates, *seed)
	case "sessions":
		w = trace.Sessions("sessions", trace.SessionConfig{
			Sessions: *n,
			Duration: simclock.FromSeconds(*duration),
			Rates:    rates,
			Seed:     *seed,
		})
	default:
		log.Fatalf("unknown trace kind %q", *kind)
	}
	if err := w.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintln(os.Stdout, "arrival_s,prompt_tokens,output_tokens,rate_tok_s,session,turn")
	for _, it := range w.Items {
		fmt.Printf("%.6f,%d,%d,%.2f,%d,%d\n",
			it.Arrival.Seconds(), it.PromptLen, it.OutputLen, it.Rate, it.Session, it.Turn)
	}
	fmt.Fprintf(os.Stderr, "wrote %d requests (%s)\n", w.Len(), *kind)
}
